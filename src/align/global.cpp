#include "align/global.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/traceback.hpp"

namespace swve::align {

namespace {

using core::AlignConfig;
using core::Alignment;
using core::CigarOp;

// Far enough from INT_MIN that a subtraction cannot wrap.
constexpr int kNegInf = INT32_MIN / 4;

struct Scorer {
  const AlignConfig* cfg;
  int operator()(uint8_t a, uint8_t b) const {
    return cfg->scheme == core::ScoreScheme::Matrix
               ? cfg->matrix->score(a, b)
               : (a == b ? cfg->match : cfg->mismatch);
  }
};

inline int gap_cost(const AlignConfig& cfg, int len) {
  if (len <= 0) return 0;
  return cfg.gap_model == core::GapModel::Affine
             ? cfg.gap_open + (len - 1) * cfg.gap_extend
             : len * cfg.gap_extend;
}

}  // namespace

Alignment global_align(seq::SeqView q, seq::SeqView r, const AlignConfig& cfg,
                       GlobalMode mode) {
  cfg.validate();
  const int m = static_cast<int>(q.length);
  const int n = static_cast<int>(r.length);
  const int band = cfg.band;
  if (band >= 0 && mode == GlobalMode::Global && std::abs(m - n) > band)
    throw std::invalid_argument("global_align: band excludes every global path");

  Alignment out;
  out.isa_used = simd::Isa::Scalar;
  out.width_used = core::Width::W32;

  // Degenerate sizes: the alignment is a pure gap (or empty).
  if (m == 0 || n == 0) {
    const bool free_q_gap =  // gap consuming the reference
        mode != GlobalMode::Global;
    const bool free_r_gap =  // gap consuming the query
        mode == GlobalMode::Overlap;
    if (m == 0 && n == 0) {
      out.score = 0;
      return out;
    }
    if (m == 0) {
      out.score = free_q_gap ? 0 : -gap_cost(cfg, n);
      if (cfg.traceback && !free_q_gap && n > 0) {
        out.cigar.push(CigarOp::Del, static_cast<uint32_t>(n));
        out.begin_ref = 0;
        out.end_ref = n - 1;
      }
      return out;
    }
    out.score = free_r_gap ? 0 : -gap_cost(cfg, m);
    if (cfg.traceback && !free_r_gap) {
      out.cigar.push(CigarOp::Ins, static_cast<uint32_t>(m));
      out.begin_query = 0;
      out.end_query = m - 1;
    }
    return out;
  }

  const Scorer score{&cfg};
  const bool affine = cfg.gap_model == core::GapModel::Affine;
  const int open = affine ? cfg.gap_open : cfg.gap_extend;
  const int ext = cfg.gap_extend;

  const bool tb = cfg.traceback;
  std::vector<uint8_t> dirs;
  const size_t cols = static_cast<size_t>(n) + 1;
  if (tb) {
    const uint64_t cells =
        (static_cast<uint64_t>(m) + 1) * (static_cast<uint64_t>(n) + 1);
    if (cells > cfg.max_traceback_cells)
      throw std::length_error("global_align: traceback matrix exceeds cell cap");
    dirs.assign(cells, core::kTbStop);
  }
  auto dir_at = [&](int i, int j) -> uint8_t& {
    return dirs[static_cast<size_t>(i) * cols + static_cast<size_t>(j)];
  };

  // Rolling rows over the (m+1) x (n+1) grid; cell (i, j) = i query and j
  // reference residues consumed.
  std::vector<int> hrow(cols), erow(cols);
  const bool free_lead_r = mode != GlobalMode::Global;   // H(0, j) = 0
  const bool free_lead_q = mode == GlobalMode::Overlap;  // H(i, 0) = 0

  hrow[0] = 0;
  for (int j = 1; j <= n; ++j) {
    hrow[static_cast<size_t>(j)] = free_lead_r ? 0 : -gap_cost(cfg, j);
    erow[static_cast<size_t>(j)] = kNegInf;  // E undefined on row 0
    if (tb && !free_lead_r) dir_at(0, j) = core::kTbF | core::kTbFExt;
  }
  erow[0] = kNegInf;

  int best = kNegInf, best_i = -1, best_j = -1;  // Semi/Overlap end cell
  for (int i = 1; i <= m; ++i) {
    const int jb = band >= 0 ? std::max(1, i - band) : 1;
    const int je = band >= 0 ? std::min(n, i + band) : n;
    // H(i-1, jb-1): the diagonal neighbor of the band's first cell sits ON
    // the band edge (|i-j| == band), so it was computed by row i-1 (or is
    // the column-0 boundary). Read it before this row overwrites slot 0.
    int hdiag = hrow[static_cast<size_t>(jb) - 1];
    const int h_col0 = free_lead_q ? 0 : -gap_cost(cfg, i);
    if (jb == 1 && tb && !free_lead_q) dir_at(i, 0) = core::kTbE | core::kTbEExt;
    int hleft = jb == 1 ? h_col0 : kNegInf;  // (i, jb-1) is out of band
    int f = kNegInf;
    if (band >= 0 && i + band <= n) {
      // The slot entering the band from above holds a stale older row;
      // out-of-band cells read as unreachable.
      hrow[static_cast<size_t>(i + band)] = kNegInf;
      erow[static_cast<size_t>(i + band)] = kNegInf;
    }
    hrow[0] = h_col0;

    for (int j = jb; j <= je; ++j) {
      const size_t jj = static_cast<size_t>(j);
      const int hup = hrow[jj];  // H(i-1, j): not yet overwritten
      int e, f_open, e_open;
      if (affine) {
        e_open = hup - open;
        e = std::max(e_open, erow[jj] - ext);
        f_open = hleft - open;
        f = std::max(f_open, f - ext);
      } else {
        e_open = e = hup - ext;
        f_open = f = hleft - ext;
      }
      e = std::max(e, kNegInf);  // keep unreachable chains from drifting
      f = std::max(f, kNegInf);
      const int hs = hdiag + score(q[static_cast<size_t>(i - 1)], r[jj - 1]);
      int h = std::max({hs, e, f});
      h = std::max(h, kNegInf);

      if (tb) {
        uint8_t flags;
        if (h == hs)
          flags = core::kTbDiag;
        else if (h == e)
          flags = core::kTbE;
        else
          flags = core::kTbF;
        if (affine) {
          if (e != e_open) flags |= core::kTbEExt;
          if (f != f_open) flags |= core::kTbFExt;
        }
        dir_at(i, j) = flags;
      }

      hdiag = hup;
      hleft = h;
      erow[jj] = e;
      hrow[jj] = h;

      // Candidate end cells for the free-trailing-gap modes.
      const bool last_row = i == m;
      const bool last_col = j == n;
      const bool is_end = mode == GlobalMode::Global
                              ? (last_row && last_col)
                              : mode == GlobalMode::SemiGlobal
                                    ? last_row
                                    : (last_row || last_col);
      if (is_end && h > best) {
        best = h;
        best_i = i;
        best_j = j;
      }
    }
  }
  if (best_i < 0)
    throw std::invalid_argument("global_align: band excludes every valid path");

  out.score = best;
  out.end_query = best_i - 1;
  out.end_ref = best_j - 1;
  out.stats.cells = static_cast<uint64_t>(m) * static_cast<uint64_t>(n);
  out.stats.scalar_cells = out.stats.cells;

  if (tb) {
    // Walk back from the end cell to a free boundary.
    core::Cigar rev;
    int i = best_i, j = best_j;
    enum class St { H, E, F } st = St::H;
    auto at_free_start = [&] {
      switch (mode) {
        case GlobalMode::Global: return i == 0 && j == 0;
        case GlobalMode::SemiGlobal: return i == 0;
        case GlobalMode::Overlap: return i == 0 || j == 0;
      }
      return true;
    };
    while (!at_free_start()) {
      const uint8_t flags = dir_at(i, j);
      if (st == St::H) {
        switch (flags & core::kTbSrcMask) {
          case core::kTbDiag:
            rev.push(CigarOp::Match, 1);
            --i;
            --j;
            break;
          case core::kTbE:
            st = St::E;
            break;
          case core::kTbF:
            st = St::F;
            break;
          default:
            throw std::logic_error("global_align: walked into a stop cell");
        }
      } else if (st == St::E) {
        rev.push(CigarOp::Ins, 1);
        if (!(flags & core::kTbEExt)) st = St::H;
        --i;
      } else {
        rev.push(CigarOp::Del, 1);
        if (!(flags & core::kTbFExt)) st = St::H;
        --j;
      }
    }
    rev.reverse();
    out.cigar = std::move(rev);
    out.begin_query = i;  // first consumed residue (0-based); == i after walk
    out.begin_ref = j;
    if (out.cigar.empty()) {
      out.begin_query = out.end_query = -1;
      out.begin_ref = out.end_ref = -1;
    }
  }
  return out;
}

}  // namespace swve::align
