// Per-service cache of per-query state: built core::PreparedQuery feed
// arrays behind an LRU, plus a pool of reusable core::Workspace objects
// leased per worker thread.
//
// Why: the engines are stateless — each request builds its query feeds and
// a fresh multi-megabyte Workspace from cold memory. A service that sees the
// same query on back-to-back requests (the ROADMAP's "heavy repeated
// traffic") repays that setup on every request. The cache sits in
// ExecContext as an optional pointer: engines that find one lease pooled
// workspaces and share prepared queries; engines that don't behave exactly
// as before. Results are bit-identical either way.
//
// Keying: PreparedQuery contents depend only on the query bytes, but the
// LRU key also folds in the scoring config (matrix identity, scheme,
// match/mismatch, gap model/open/extend) and the resolved ISA. That is
// deliberately conservative — future cached artifacts (striped profiles,
// biased row tables) DO depend on those, and a too-wide key is a silent
// correctness trap while a too-narrow one only costs duplicate entries.
//
// Thread safety: all public methods are safe to call concurrently; the LRU
// and pool are guarded by one mutex (lookups are O(query) hashing + a map
// probe, far below the DP work they precede). Entries are handed out as
// shared_ptr-to-const so eviction never invalidates an in-flight request.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/params.hpp"
#include "core/prepared_query.hpp"
#include "core/workspace.hpp"
#include "seq/sequence.hpp"

namespace swve::align {

struct QueryCacheStats {
  uint64_t hits = 0;        ///< prepared() served from the LRU
  uint64_t misses = 0;      ///< prepared() had to build
  uint64_t evictions = 0;   ///< LRU entries displaced at capacity
  uint64_t ws_reuses = 0;   ///< workspace leases served from the pool
  uint64_t ws_creates = 0;  ///< workspace leases that had to allocate
  size_t entries = 0;       ///< current LRU size
  size_t pooled_workspaces = 0;  ///< idle workspaces in the pool
  uint64_t prepared_bytes = 0;   ///< memory held by cached PreparedQuerys
};

class QueryStateCache {
 public:
  /// `capacity` bounds the number of distinct (query, config, ISA) entries;
  /// `max_pool` bounds idle pooled workspaces (leases beyond it allocate
  /// and free as before).
  explicit QueryStateCache(size_t capacity = 32, size_t max_pool = 64);

  /// The PreparedQuery for `query` under `cfg`, building and caching it on
  /// first sight. The returned pointer stays valid after eviction (shared
  /// ownership); treat it as read-only (it is shared across threads).
  std::shared_ptr<const core::PreparedQuery> prepared(
      seq::SeqView query, const core::AlignConfig& cfg);

  /// RAII workspace checkout. Returned to the owning pool on destruction
  /// (or freed, if detached / pool full). Movable, not copyable.
  class WorkspaceLease {
   public:
    WorkspaceLease() : ws_(std::make_unique<core::Workspace>()) {}
    WorkspaceLease(WorkspaceLease&&) noexcept = default;
    WorkspaceLease& operator=(WorkspaceLease&&) noexcept = default;
    WorkspaceLease(const WorkspaceLease&) = delete;
    WorkspaceLease& operator=(const WorkspaceLease&) = delete;
    ~WorkspaceLease();

    core::Workspace& ws() noexcept { return *ws_; }

   private:
    friend class QueryStateCache;
    WorkspaceLease(std::unique_ptr<core::Workspace> ws, QueryStateCache* owner)
        : ws_(std::move(ws)), owner_(owner) {}
    std::unique_ptr<core::Workspace> ws_;
    QueryStateCache* owner_ = nullptr;  // null: detached, free on destroy
  };

  /// Check a workspace out of the pool (allocating when the pool is empty).
  WorkspaceLease lease_workspace();

  /// Engine-side helper: pool-backed lease when `cache` is set, plain fresh
  /// workspace otherwise — so engine code takes one unconditional lease.
  static WorkspaceLease lease(QueryStateCache* cache) {
    return cache != nullptr ? cache->lease_workspace() : WorkspaceLease();
  }

  QueryCacheStats stats() const;
  void clear();  ///< drop all entries and pooled workspaces (stats remain)
  size_t capacity() const noexcept { return capacity_; }

 private:
  struct Key {
    std::vector<uint8_t> qbytes;
    const void* matrix;
    int32_t match, mismatch, gap_open, gap_extend;
    uint8_t scheme, gap_model, isa;
    bool operator==(const Key& o) const noexcept;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const noexcept;
  };
  struct Entry {
    Key key;
    std::shared_ptr<const core::PreparedQuery> prep;
  };

  void return_workspace(std::unique_ptr<core::Workspace> ws);

  size_t capacity_;
  size_t max_pool_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  std::vector<std::unique_ptr<core::Workspace>> pool_;
  QueryCacheStats stats_{};
};

}  // namespace swve::align
