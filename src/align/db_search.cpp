#include "align/db_search.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>

#include "align/query_cache.hpp"
#include "align/sharded_search.hpp"
#include "parallel/partition.hpp"
#include "perf/metrics.hpp"
#include "perf/timer.hpp"

namespace swve::align {

namespace {

/// Keep the k best hits of a range scanned in index order.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) {}
  void offer(const Hit& h) {
    if (h.score <= 0) return;
    hits_.push_back(h);
    std::push_heap(hits_.begin(), hits_.end());  // max-heap on operator<,
    if (hits_.size() > k_) {                     // i.e. worst hit at front
      std::pop_heap(hits_.begin(), hits_.end());
      hits_.pop_back();
    }
  }
  std::vector<Hit> sorted() && {
    std::sort(hits_.begin(), hits_.end());
    return std::move(hits_);
  }

 private:
  size_t k_;
  std::vector<Hit> hits_;
};

int batch_lanes() {
  return simd::resolve_isa(simd::Isa::Auto) == simd::Isa::Avx512 &&
                 simd::cpu_features().avx512vbmi
             ? 64
             : 32;
}

uint16_t width_bits(core::Width w) {
  switch (w) {
    case core::Width::W8: return 8;
    case core::Width::W16: return 16;
    case core::Width::W32: return 32;
    case core::Width::Adaptive: return 0;
  }
  return 0;
}

obs::TruncCause trunc_cause(const ExecContext& ctx) {
  return ctx.cancelled() ? obs::TruncCause::Cancelled
                         : obs::TruncCause::Deadline;
}

}  // namespace

namespace engine {

SearchResult search_batch(const seq::SequenceDatabase& db,
                          const core::Batch32Db& bdb,
                          const core::AlignConfig& cfg, seq::SeqView query,
                          size_t top_k, const ExecContext& ctx) {
  perf::Stopwatch sw;
  SearchResult out;
  out.query_length = query.length;
  out.db_residues = db.total_residues();
  if (db.empty() || query.empty()) return out;

  // Cached query state, when the caller provides a cache: the prepared
  // feed arrays are shared read-only across worker threads, and workspaces
  // come from the pool instead of cold allocation.
  std::shared_ptr<const core::PreparedQuery> prep;
  if (ctx.query_cache != nullptr) prep = ctx.query_cache->prepared(query, cfg);

  // Phase 1: score every sequence through the batch kernel, batches fanned
  // out across threads (disjoint writes by original sequence index).
  std::vector<int> scores(db.size(), 0);
  core::BatchSearchStats agg{};
  std::mutex agg_mu;
  std::atomic<bool> truncated{false};
  const simd::Isa isa = simd::resolve_isa(cfg.isa);
  const int k_ilp = core::resolved_ilp(isa);
  auto score_batches = [&](size_t b_begin, size_t b_end) {
    obs::Span span(ctx.trace, "chunk.search_batch");
    // Per-K kernel variant: the PMU attribution cell (and the exported
    // swve_pmu_* family) separates interleave depths, so IPC/backend-stall
    // deltas across K stay visible in a live service.
    span.set_kernel(perf::batch_kernel_variant(k_ilp));
    span.set_ilp(static_cast<uint8_t>(k_ilp));
    span.set_index(b_begin);
    span.set_isa(isa);
    span.set_width_bits(8);
    span.set_lanes(static_cast<uint32_t>(bdb.lanes()));
    auto lease = QueryStateCache::lease(ctx.query_cache);
    core::Workspace& ws = lease.ws();
    core::BatchSearchStats local{};
    core::AlignConfig wide = cfg;
    wide.width = core::Width::W16;
    for (size_t b = b_begin; b < b_end;) {
      if (ctx.should_stop()) {  // per-group cancellation/deadline check
        truncated.store(true, std::memory_order_relaxed);
        span.set_trunc(trunc_cause(ctx));
        break;
      }
      // Feed up to k_ilp batches fused; the interleaved kernel keeps one
      // dependency chain per batch in flight (bit-identical to K = 1).
      const int group = static_cast<int>(
          std::min<size_t>(static_cast<size_t>(k_ilp), b_end - b));
      core::Batch32Db::Batch batch[core::kMaxBatchInterleave];
      core::BatchCols cols[core::kMaxBatchInterleave];
      core::Batch8Result r8[core::kMaxBatchInterleave];
      for (int g = 0; g < group; ++g) {
        batch[g] = bdb.batch(b + static_cast<size_t>(g));
        cols[g] = core::BatchCols{batch[g].columns, batch[g].max_len};
      }
      core::batch32_align_u8_group(query, cols, group, bdb.lanes(), cfg, ws,
                                   isa, k_ilp, r8);
      for (int g = 0; g < group; ++g) {
        local.cells8 += static_cast<uint64_t>(batch[g].max_len) *
                        query.length * static_cast<uint64_t>(bdb.lanes());
        local.useful_cells8 += batch[g].real_residues * query.length;
        for (uint32_t k = 0; k < batch[g].count; ++k) {
          const uint32_t seq_idx = batch[g].seq_index[k];
          if (r8[g].saturated_mask & (uint64_t{1} << k)) {
            core::Alignment a =
                core::diag_align(query, db[seq_idx], wide, ws, prep.get());
            if (a.saturated) {
              core::AlignConfig w32 = wide;
              w32.width = core::Width::W32;
              a = core::diag_align(query, db[seq_idx], w32, ws, prep.get());
            }
            scores[seq_idx] = a.score;
            ++local.rescored;
            local.rescored_cells += a.stats.cells;
          } else {
            scores[seq_idx] = r8[g].max_score[k];
          }
        }
      }
      b += static_cast<size_t>(group);
    }
    span.add_cells(local.cells8 + local.rescored_cells);
    span.set_useful_cells(local.useful_cells8 + local.rescored_cells);
    span.end();
    std::lock_guard<std::mutex> lk(agg_mu);
    agg += local;
  };
  if (ctx.pool) {
    ctx.pool->parallel_for(
        bdb.batch_count(),
        [&](size_t b, size_t e, unsigned) { score_batches(b, e); });
  } else {
    score_batches(0, bdb.batch_count());
  }
  out.truncated = truncated.load(std::memory_order_relaxed);
  out.batch_stats = agg;
  if (out.truncated) {  // partial answer; skip the exact re-alignment pass
    out.seconds = sw.seconds();
    return out;
  }

  // Phase 2: top-k over the score vector (index order => deterministic),
  // then exact re-alignment of just the winners for end positions.
  TopK top(top_k);
  for (size_t s = 0; s < scores.size(); ++s)
    top.offer(Hit{static_cast<uint32_t>(s), scores[s], -1, -1});
  out.hits = std::move(top).sorted();
  auto lease = QueryStateCache::lease(ctx.query_cache);
  core::Workspace& ws = lease.ws();
  for (Hit& h : out.hits) {
    core::Alignment a =
        core::diag_align(query, db[h.seq_index], cfg, ws, prep.get());
    h.end_query = a.end_query;
    h.end_ref = a.end_ref;
    out.stats += a.stats;
  }
  out.stats.cells += agg.cells8 + agg.rescored_cells;
  out.stats.vector_cells += agg.cells8;
  out.seconds = sw.seconds();
  return out;
}

SearchResult search_diagonal(const seq::SequenceDatabase& db,
                             const core::AlignConfig& cfg, seq::SeqView query,
                             size_t top_k, const ExecContext& ctx) {
  perf::Stopwatch sw;
  SearchResult out;
  out.query_length = query.length;
  out.db_residues = db.total_residues();
  if (db.empty() || query.empty()) return out;

  std::shared_ptr<const core::PreparedQuery> prep;
  if (ctx.query_cache != nullptr) prep = ctx.query_cache->prepared(query, cfg);

  const unsigned parts = ctx.pool ? ctx.pool->size() : 1u;
  auto ranges = parallel::partition_by_residues(db, parts);
  std::vector<std::vector<Hit>> part_hits(parts);
  std::vector<core::KernelStats> part_stats(parts);
  std::atomic<bool> truncated{false};

  auto run_part = [&](unsigned p) {
    auto [begin, end] = ranges[p];
    if (begin >= end) return;
    obs::Span span(ctx.trace, "chunk.search_diagonal");
    span.set_kernel(perf::KernelVariant::Diagonal);
    span.set_index(p);
    auto lease = QueryStateCache::lease(ctx.query_cache);
    core::Workspace& ws = lease.ws();
    TopK top(top_k);
    core::KernelStats stats;
    for (size_t s = begin; s < end; ++s) {
      if (ctx.should_stop()) {  // per-sequence cancellation/deadline check
        truncated.store(true, std::memory_order_relaxed);
        span.set_trunc(trunc_cause(ctx));
        break;
      }
      core::Alignment a = core::diag_align(query, db[s], cfg, ws, prep.get());
      span.set_isa(a.isa_used);
      span.set_width_bits(width_bits(a.width_used));
      stats += a.stats;
      top.offer(Hit{static_cast<uint32_t>(s), a.score, a.end_query, a.end_ref});
    }
    span.add_cells(stats.cells);
    part_hits[p] = std::move(top).sorted();
    part_stats[p] = stats;
  };

  if (ctx.pool) {
    ctx.pool->parallel_for(parts, [&](size_t b, size_t e, unsigned) {
      for (size_t p = b; p < e; ++p) run_part(static_cast<unsigned>(p));
    });
  } else {
    run_part(0);
  }

  // Deterministic merge in partition order, then global top-k.
  TopK merged(top_k);
  for (unsigned p = 0; p < parts; ++p) {
    out.stats += part_stats[p];
    for (const Hit& h : part_hits[p]) merged.offer(h);
  }
  out.hits = std::move(merged).sorted();
  out.truncated = truncated.load(std::memory_order_relaxed);
  out.seconds = sw.seconds();
  return out;
}

}  // namespace engine

DatabaseSearch::DatabaseSearch(const seq::SequenceDatabase& db, AlignConfig cfg,
                               SearchMode mode, core::PackingPolicy packing)
    : db_(&db), cfg_(cfg), mode_(mode) {
  cfg_.validate();
  cfg_.traceback = false;  // scoring pass; re-align hits for traceback
  if (mode_ == SearchMode::Batch) {
    if (cfg_.band >= 0)
      throw std::invalid_argument("DatabaseSearch: Batch mode cannot band");
    bdb_ = std::make_unique<core::Batch32Db>(db, batch_lanes(), packing);
    packed_ = bdb_.get();
  }
}

DatabaseSearch::DatabaseSearch(const seq::SequenceDatabase& db,
                               const core::Batch32Db& packed, AlignConfig cfg)
    : db_(&db), cfg_(cfg), mode_(SearchMode::Batch), packed_(&packed) {
  cfg_.validate();
  cfg_.traceback = false;
  if (cfg_.band >= 0)
    throw std::invalid_argument("DatabaseSearch: Batch mode cannot band");
  if (packed.sequence_count() != db.size())
    throw std::invalid_argument(
        "DatabaseSearch: packed database does not match the sequence database");
}

DatabaseSearch::~DatabaseSearch() = default;
DatabaseSearch::DatabaseSearch(DatabaseSearch&&) noexcept = default;
DatabaseSearch& DatabaseSearch::operator=(DatabaseSearch&&) noexcept = default;

core::ErrorOr<void> DatabaseSearch::enable_sharding(const ShardOptions& opt) {
  if (mode_ != SearchMode::Batch)
    return core::ConfigError{core::ConfigError::Code::Unsupported,
                             "DatabaseSearch: sharding requires Batch mode"};
  auto sharded = ShardedSearch::create(*db_, *packed_, opt);
  if (!sharded.ok()) return sharded.error();
  sharded_ = std::move(sharded).value();
  return {};
}

SearchResult DatabaseSearch::search(seq::SeqView query, size_t top_k,
                                    parallel::ThreadPool* pool) const {
  ExecContext ctx;
  ctx.pool = pool;
  return search(query, top_k, ctx);
}

SearchResult DatabaseSearch::search(seq::SeqView query, size_t top_k,
                                    const ExecContext& ctx) const {
  if (sharded_) return sharded_->search(cfg_, query, top_k, ctx);
  return mode_ == SearchMode::Batch
             ? engine::search_batch(*db_, *packed_, cfg_, query, top_k, ctx)
             : engine::search_diagonal(*db_, cfg_, query, top_k, ctx);
}

}  // namespace swve::align
