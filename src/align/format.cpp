#include "align/format.hpp"

#include <sstream>
#include <stdexcept>

namespace swve::align {

namespace {

struct Columns {
  std::string q, mid, t;
  size_t q_begin, t_begin;  // 0-based start coordinates
};

Columns build_columns(const seq::Sequence& query, const seq::Sequence& target,
                      const core::Alignment& aln) {
  Columns c;
  c.q_begin = static_cast<size_t>(aln.begin_query);
  c.t_begin = static_cast<size_t>(aln.begin_ref);
  size_t qi = c.q_begin, tj = c.t_begin;
  const auto& alpha = query.alphabet();
  for (size_t k = 0; k < aln.cigar.size(); ++k) {
    const auto op = aln.cigar.op(k);
    for (uint32_t u = 0; u < aln.cigar.len(k); ++u) {
      switch (op) {
        case core::CigarOp::Match: {
          const uint8_t a = query.codes()[qi++];
          const uint8_t b = target.codes()[tj++];
          c.q += alpha.decode(a);
          c.t += alpha.decode(b);
          c.mid += a == b ? '|' : '.';
          break;
        }
        case core::CigarOp::Ins:
          c.q += alpha.decode(query.codes()[qi++]);
          c.t += '-';
          c.mid += ' ';
          break;
        case core::CigarOp::Del:
          c.q += '-';
          c.t += alpha.decode(target.codes()[tj++]);
          c.mid += ' ';
          break;
      }
    }
  }
  return c;
}

}  // namespace

AlignmentStats alignment_stats(const seq::Sequence& query,
                               const seq::Sequence& target,
                               const core::Alignment& aln) {
  AlignmentStats s;
  if (aln.cigar.empty()) {
    if (aln.score > 0)
      throw std::invalid_argument(
          "alignment_stats: alignment has no CIGAR (traceback disabled?)");
    return s;
  }
  size_t qi = static_cast<size_t>(aln.begin_query);
  size_t tj = static_cast<size_t>(aln.begin_ref);
  for (size_t k = 0; k < aln.cigar.size(); ++k) {
    const auto op = aln.cigar.op(k);
    const uint32_t len = aln.cigar.len(k);
    s.columns += len;
    switch (op) {
      case core::CigarOp::Match:
        for (uint32_t u = 0; u < len; ++u) {
          if (query.codes()[qi++] == target.codes()[tj++])
            ++s.matches;
          else
            ++s.mismatches;
        }
        break;
      case core::CigarOp::Ins:
        s.gaps += len;
        ++s.gap_openings;
        qi += len;
        break;
      case core::CigarOp::Del:
        s.gaps += len;
        ++s.gap_openings;
        tj += len;
        break;
    }
  }
  return s;
}

std::string format_alignment(const seq::Sequence& query,
                             const seq::Sequence& target,
                             const core::Alignment& aln, int width) {
  if (aln.cigar.empty()) return "";
  if (width <= 0) width = 60;
  Columns c = build_columns(query, target, aln);

  std::ostringstream out;
  size_t q_pos = c.q_begin, t_pos = c.t_begin;
  for (size_t off = 0; off < c.q.size(); off += static_cast<size_t>(width)) {
    const size_t chunk = std::min<size_t>(static_cast<size_t>(width),
                                          c.q.size() - off);
    const std::string qs = c.q.substr(off, chunk);
    const std::string ms = c.mid.substr(off, chunk);
    const std::string ts = c.t.substr(off, chunk);
    size_t q_res = 0, t_res = 0;  // residues consumed in this block
    for (char ch : qs)
      if (ch != '-') ++q_res;
    for (char ch : ts)
      if (ch != '-') ++t_res;

    out << "Query  " << q_pos + 1 << "\t" << qs << "\t" << q_pos + q_res << "\n";
    out << "       "
        << "\t" << ms << "\t\n";
    out << "Sbjct  " << t_pos + 1 << "\t" << ts << "\t" << t_pos + t_res << "\n";
    if (off + chunk < c.q.size()) out << "\n";
    q_pos += q_res;
    t_pos += t_res;
  }
  return out.str();
}

}  // namespace swve::align
