#include "align/batch_server.hpp"

#include <algorithm>

#include "align/query_cache.hpp"
#include "core/dispatch.hpp"
#include "perf/metrics.hpp"
#include "perf/timer.hpp"
#include "simd/cpu.hpp"

namespace swve::align {

namespace engine {

int batch_server_lanes() {
#if defined(SWVE_HAVE_AVX512_BUILD)
  if (simd::resolve_isa(simd::Isa::Auto) == simd::Isa::Avx512 &&
      simd::cpu_features().avx512vbmi)
    return 64;
#endif
  return 32;
}

std::vector<BatchQueryResult> batch_run(const seq::SequenceDatabase& db,
                                        const core::Batch32Db& bdb,
                                        const core::AlignConfig& cfg,
                                        const std::vector<seq::Sequence>& queries,
                                        size_t top_k, const ExecContext& ctx) {
  std::vector<BatchQueryResult> out(queries.size());

  auto run_query = [&](size_t qi) {
    perf::Stopwatch sw;
    obs::Span span(ctx.trace, "chunk.batch_query");
    const simd::Isa isa = simd::resolve_isa(cfg.isa);
    // batch_scores groups batches at the resolved interleave depth; key the
    // span (and its PMU attribution cell) to that per-K kernel variant.
    const int k_ilp = core::resolved_ilp(isa);
    span.set_kernel(perf::batch_kernel_variant(k_ilp));
    span.set_ilp(static_cast<uint8_t>(k_ilp));
    span.set_index(qi);
    span.set_isa(isa);
    span.set_width_bits(8);
    span.set_lanes(static_cast<uint32_t>(bdb.lanes()));
    BatchQueryResult& r = out[qi];
    const seq::Sequence& q = queries[qi];
    r.result.query_length = q.length();
    r.result.db_residues = db.total_residues();
    if (ctx.should_stop()) {  // per-query cancellation/deadline check
      r.result.truncated = true;
      span.set_trunc(ctx.cancelled() ? obs::TruncCause::Cancelled
                                     : obs::TruncCause::Deadline);
      return;
    }
    std::shared_ptr<const core::PreparedQuery> prep;
    if (ctx.query_cache != nullptr) prep = ctx.query_cache->prepared(q, cfg);
    auto lease = QueryStateCache::lease(ctx.query_cache);
    core::Workspace& ws = lease.ws();
    std::vector<int> scores =
        core::batch_scores(q, bdb, db, cfg, ws, &r.batch_stats, prep.get());
    // Top-k over the score vector (index order => deterministic ties).
    std::vector<Hit> hits;
    for (size_t s = 0; s < scores.size(); ++s)
      if (scores[s] > 0)
        hits.push_back(Hit{static_cast<uint32_t>(s), scores[s], -1, -1});
    std::sort(hits.begin(), hits.end());
    if (hits.size() > top_k) hits.resize(top_k);
    r.result.hits = std::move(hits);
    r.result.stats.cells = r.batch_stats.cells8 + r.batch_stats.rescored_cells;
    r.result.stats.vector_cells = r.batch_stats.cells8;
    span.add_cells(r.result.stats.cells);
    span.set_useful_cells(r.batch_stats.useful_cells8 +
                          r.batch_stats.rescored_cells);
    r.result.seconds = sw.seconds();
  };

  if (ctx.pool) {
    ctx.pool->parallel_chunks(queries.size(),
                              [&](size_t qi, unsigned) { run_query(qi); });
  } else {
    for (size_t qi = 0; qi < queries.size(); ++qi) run_query(qi);
  }
  return out;
}

}  // namespace engine

BatchServer::BatchServer(const seq::SequenceDatabase& db, AlignConfig cfg)
    : db_(&db), cfg_(cfg), bdb_(db, engine::batch_server_lanes()) {
  cfg_.validate();
  cfg_.traceback = false;
}

std::vector<BatchQueryResult> BatchServer::run(
    const std::vector<seq::Sequence>& queries, size_t top_k,
    parallel::ThreadPool* pool) const {
  ExecContext ctx;
  ctx.pool = pool;
  return engine::batch_run(*db_, bdb_, cfg_, queries, top_k, ctx);
}

std::vector<BatchQueryResult> BatchServer::run(
    const std::vector<seq::Sequence>& queries, size_t top_k,
    const ExecContext& ctx) const {
  return engine::batch_run(*db_, bdb_, cfg_, queries, top_k, ctx);
}

core::Alignment BatchServer::realign(const seq::Sequence& query, const Hit& hit) const {
  AlignConfig cfg = cfg_;
  cfg.traceback = true;
  cfg.width = core::Width::Adaptive;
  core::Workspace ws;
  return core::diag_align(query, (*db_)[hit.seq_index], cfg, ws);
}

}  // namespace swve::align
