// Multi-window burn-rate SLO alerting over the telemetry history ring.
//
// An error budget of (1 - objective) is "burning at rate B" when the
// bad-event fraction over a window is B times the budget; sustained B > 1
// exhausts the budget before the period ends. Following SRE practice, an
// alert condition requires BOTH a fast window (catches a fresh regression
// quickly) and a slow window (confirms it is sustained, so a single burst
// that already ended does not page) to burn past the threshold. Two
// thresholds give two severities: warning (ticket) and firing (page),
// with consecutive-evaluation hysteresis in both directions so the state
// cannot flap at cadence granularity.
//
// The engine owns no thread and takes no locks on the request path: it is
// evaluated from the sampler tick, right after the TimeSeriesStore push,
// reading only the store's delta points. State transitions emit
// structured "slo.state_change" log events; the current status surfaces
// in /statusz and both metric exporters.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "obs/timeseries.hpp"

namespace swve::obs {

enum class AlertState : uint8_t { Ok = 0, Warning = 1, Firing = 2 };
const char* alert_state_name(AlertState s) noexcept;

struct SloOptions {
  /// Latency objective: at least `latency_objective` of requests complete
  /// within `latency_target_s`. 0 disables the latency SLO. Violations are
  /// counted from the window histogram buckets (exact at bucket
  /// boundaries, conservative inside a bucket).
  double latency_target_s = 0;
  double latency_objective = 0.99;

  /// Availability objective: at least this fraction of requests succeed
  /// (errors = rejected + deadline-expired + invalid + aborted). 0
  /// disables the availability SLO.
  double availability_objective = 0.999;

  // Burn-rate windows and thresholds (SRE-workbook defaults: a page at
  // 14.4x burns 2% of a 30-day budget in an hour).
  double fast_window_s = 60;
  double slow_window_s = 600;
  double firing_burn = 14.4;
  double warning_burn = 6.0;

  // Hysteresis: consecutive evaluations at a higher severity needed to
  // escalate, and at a lower severity to de-escalate.
  int enter_evals = 2;
  int exit_evals = 3;

  bool enabled() const noexcept {
    return latency_target_s > 0 || availability_objective > 0;
  }
};

/// Last evaluation's burn rates plus the hysteresis-filtered alert state.
struct SloStatus {
  AlertState state = AlertState::Ok;    ///< filtered (the alert surface)
  AlertState instant = AlertState::Ok;  ///< this evaluation's raw severity
  double latency_fast_burn = 0;
  double latency_slow_burn = 0;
  double availability_fast_burn = 0;
  double availability_slow_burn = 0;
  uint64_t evaluations = 0;
  uint64_t transitions = 0;  ///< filtered-state changes over the lifetime
  double since_s = 0;        ///< t_s of the last transition (0 = never)
};

class SloEngine {
 public:
  /// `store` must outlive the engine (both are owned by AlignService, the
  /// store outliving the sampler that drives evaluate()).
  SloEngine(SloOptions options, const TimeSeriesStore* store);

  /// Recompute burn rates over the fast/slow windows of the store's ring
  /// and advance the alert state machine; `t_s` is the pusher's clock.
  /// Thread-safe, intended for the sampler thread after each push.
  SloStatus evaluate(double t_s);

  SloStatus status() const;
  const SloOptions& options() const noexcept { return opt_; }

  /// {"state":"ok",...} — the /statusz "slo" section.
  std::string json() const;

 private:
  struct Burn {
    double latency = 0;
    double availability = 0;
  };
  Burn window_burn(const std::vector<TimeSeriesPoint>& pts, double now_s,
                   double window_s) const;

  SloOptions opt_;
  const TimeSeriesStore* store_;
  mutable std::mutex mu_;
  SloStatus status_;
  int up_streak_ = 0;
  int down_streak_ = 0;
};

}  // namespace swve::obs
