// Black-box flight recorder: when the process dies — SIGSEGV/SIGABRT
// crash or SIGTERM/SIGINT shutdown — dump the evidence an operator needs
// to reconstruct what the service was doing: the trace ring (as a Chrome
// trace), a metrics snapshot, and the in-flight request table, all written
// from the signal handler with async-signal-safe primitives only
// (snprintf into stack buffers + open/write/close; the trace sink and
// in-flight table are plain atomics by design, see obs/trace.hpp).
//
// Exactly one recorder can be installed at a time (signal handlers are
// process-global). Fatal signals re-raise with the default disposition
// after dumping, so exit status / core dumps are unchanged; termination
// signals _exit(128+sig) like an unhandled signal would.
#pragma once

#include <cstdint>
#include <string>

#include "obs/inflight.hpp"
#include "obs/trace.hpp"

namespace swve::perf {
class MetricsRegistry;
}

namespace swve::obs {

struct FlightRecorderOptions {
  std::string path;       ///< dump file ("" disables file output)
  std::string trace_out;  ///< also flush a Chrome trace here ("" = none)
  TraceSink* sink = nullptr;
  perf::MetricsRegistry* registry = nullptr;
  const InFlightTable* inflight = nullptr;
  bool handle_fatal = true;  ///< SIGSEGV, SIGABRT, SIGBUS
  bool handle_term = true;   ///< SIGTERM, SIGINT
  /// On SIGTERM/SIGINT, write one 8-byte count to this fd (an eventfd or
  /// pipe write end) after dumping — the async-signal-safe hook a server's
  /// event loop uses to start a graceful drain. -1 disables.
  int notify_fd = -1;
  /// When false, SIGTERM/SIGINT do NOT _exit(128+sig) after dumping and
  /// notifying; the process keeps running so the owner (the server drain
  /// path) controls shutdown. Fatal signals still re-raise regardless.
  bool exit_on_term = true;
};

/// Installs signal handlers on install(), restores them on uninstall() /
/// destruction. All pointed-to objects must outlive the installation.
class FlightRecorder {
 public:
  FlightRecorder() = default;
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Returns false if another recorder is already installed (or no
  /// platform support).
  bool install(const FlightRecorderOptions& options);
  void uninstall();
  bool installed() const noexcept { return installed_; }

  /// Write a dump right now (no signal involved) — the same format the
  /// handlers produce, with `reason` in place of the signal name.
  /// Returns false when the dump file could not be written.
  bool dump_now(const char* reason) const;

 private:
  bool installed_ = false;
};

}  // namespace swve::obs
