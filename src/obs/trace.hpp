// Request tracing: spans recorded into a lock-free per-thread ring buffer,
// exported as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing).
//
// Design constraints, in order:
//   1. Pay-for-what-you-use. A TraceContext with no sink and no PMU makes
//      every Span call a single branch — no clock reads, no stores.
//      Engines thread a TraceContext unconditionally; only processes that
//      install a TraceSink (or enable PMU attribution) pay for tracing.
//   2. Lock-free recording. Each recording thread owns one single-producer
//      ring in the sink; an event write is a per-slot seqlock (all fields
//      are relaxed atomics, so concurrent export is data-race-free and a
//      torn read is detected by the version check and skipped).
//   3. Bounded memory. Rings overwrite their oldest events; the sink counts
//      what it dropped so an export is never silently partial.
//   4. Crash-readable. The ring is plain atomics, so the flight recorder
//      (obs/flight_recorder.hpp) can export it from a signal handler via
//      the allocation-free read_events()/write_chrome_trace() paths.
//
// A thread binds to a ring slot the first time it records into a given
// sink (thread_local cache keyed by a process-unique sink id). Threads
// beyond `max_threads` drop their events (counted in dropped()).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/pmu.hpp"
#include "simd/cpu.hpp"

namespace swve::perf {
enum class KernelVariant : int;
class MetricsRegistry;
}  // namespace swve::perf

namespace swve::obs {

/// Why a chunk of kernel work stopped early (mirrors ExecContext polling).
enum class TruncCause : uint8_t { None = 0, Cancelled = 1, Deadline = 2 };
const char* trunc_cause_name(TruncCause c) noexcept;

/// One completed span ("ph":"X" in the Chrome trace format). `name` must be
/// a string with static storage duration — events store the pointer.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t trace_id = 0;       ///< request the span belongs to (0 = none)
  uint64_t ts_ns = 0;          ///< start, ns since the sink's epoch
  uint64_t dur_ns = 0;
  uint32_t tid = 0;            ///< ring slot of the recording thread

  // Kernel-work annotations (default values mean "unset" and are omitted
  // from the exported args).
  simd::Isa isa = simd::Isa::Auto;
  uint16_t width_bits = 0;     ///< DP integer width (8/16/32)
  uint32_t lanes = 0;          ///< batch-kernel lane count
  uint64_t cells = 0;          ///< DP cells computed in the span
  uint64_t useful_cells = 0;   ///< cells on real residues (batch path:
                               ///< cells minus padding — packing efficiency)
  uint64_t index = kNoIndex;   ///< chunk/batch/query index
  uint8_t ilp = 0;             ///< batch-kernel interleave depth (0 = unset)
  TruncCause trunc = TruncCause::None;

  // Hardware-counter deltas over the span (obs::PmuSession start/stop
  // reads; all zero when PMU attribution is off or unavailable).
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t stall_frontend = 0;
  uint64_t stall_backend = 0;
  uint64_t llc_misses = 0;
  uint64_t branch_misses = 0;

  static constexpr uint64_t kNoIndex = ~uint64_t{0};

  double ipc() const noexcept {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  /// Effective GHz of the recording thread over the span.
  double effective_ghz() const noexcept {
    return dur_ns > 0 && cycles > 0
               ? static_cast<double>(cycles) / static_cast<double>(dur_ns)
               : 0.0;
  }
};

/// Lock-free trace-event sink. One per process (or per service); install it
/// on a TraceContext to enable recording. All methods are thread-safe;
/// record() is wait-free for a thread that already holds a ring slot.
class TraceSink {
 public:
  /// `events_per_thread` is rounded up to a power of two; each of up to
  /// `max_threads` recording threads gets its own ring of that many slots.
  explicit TraceSink(size_t events_per_thread = 8192,
                     unsigned max_threads = 64);
  ~TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Record one completed span. Wait-free; overwrites the thread's oldest
  /// event when its ring is full.
  void record(const TraceEvent& event) noexcept;

  /// Convenience: record a span whose endpoints were captured with
  /// now_ns() (e.g. queue wait measured from the submit site).
  void record_span(const char* name, uint64_t trace_id, uint64_t t0_ns,
                   uint64_t t1_ns) noexcept;

  /// Nanoseconds since this sink was created (the trace time base).
  uint64_t now_ns() const noexcept;
  /// The sink's epoch on the steady_now_ns() scale (span timestamps are
  /// `steady_now_ns() - epoch_steady_ns()`).
  uint64_t epoch_steady_ns() const noexcept { return epoch_steady_ns_; }

  /// Allocate a request trace id (1-based, monotone).
  uint64_t next_trace_id() noexcept {
    return trace_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Events ever recorded into a ring (dropped ones included).
  uint64_t recorded() const noexcept;
  /// Events lost: overwritten by ring wrap, dropped for lack of a thread
  /// slot, or skipped because an export raced their (re)write.
  uint64_t dropped() const noexcept;
  /// dropped(), by cause — exported as swve_trace_dropped_total{cause=...}.
  uint64_t wrap_dropped() const noexcept;
  uint64_t torn_skipped() const noexcept {
    return torn_skipped_.load(std::memory_order_relaxed);
  }
  uint64_t overflow_dropped() const noexcept {
    return overflow_dropped_.load(std::memory_order_relaxed);
  }

  /// Point-in-time copy of every live event, sorted by start timestamp.
  /// Safe to call while other threads record.
  std::vector<TraceEvent> snapshot_events() const;

  /// Allocation-free snapshot into a caller buffer (unsorted, ring order).
  /// Async-signal-safe: reads only atomics. Returns events written.
  size_t read_events(TraceEvent* out, size_t max) const noexcept;

  /// Chrome trace-event JSON ("traceEvents" array of complete events with
  /// ISA/width/lanes/cells/trunc/PMU args, plus per-thread "ipc"/"ghz"
  /// counter tracks). Load in Perfetto/chrome://tracing.
  std::string chrome_trace_json() const;

  /// Chrome trace JSON straight to a file descriptor with no allocation —
  /// the signal-handler flush path (events unsorted; viewers re-sort).
  /// Returns false if a write failed.
  bool write_chrome_trace(int fd) const noexcept;

  size_t capacity_per_thread() const noexcept { return capacity_; }
  unsigned max_threads() const noexcept { return max_threads_; }

 private:
  // Per-slot seqlock: version is odd while a write is in progress; every
  // field is a relaxed atomic so concurrent export never data-races.
  struct Slot {
    std::atomic<uint64_t> version{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint64_t> meta{0};  ///< isa | trunc | width_bits | lanes | ilp
    std::atomic<uint64_t> cells{0};
    std::atomic<uint64_t> useful_cells{0};
    std::atomic<uint64_t> index{0};
    std::atomic<uint64_t> cycles{0};
    std::atomic<uint64_t> instructions{0};
    std::atomic<uint64_t> stall_frontend{0};
    std::atomic<uint64_t> stall_backend{0};
    std::atomic<uint64_t> llc_misses{0};
    std::atomic<uint64_t> branch_misses{0};
  };
  struct Ring {
    std::unique_ptr<Slot[]> slots;
    std::atomic<uint64_t> head{0};  ///< events ever written to this ring
  };

  /// Ring index for the calling thread, registering it on first use;
  /// -1 when all `max_threads_` slots are taken.
  int ring_index() noexcept;

  /// Seqlock-checked read of one slot; false if torn (counted).
  bool read_slot(const Slot& s, TraceEvent& e) const noexcept;

  size_t capacity_;
  uint64_t mask_;
  unsigned max_threads_;
  std::unique_ptr<Ring[]> rings_;
  std::atomic<unsigned> registered_{0};
  std::atomic<uint64_t> overflow_dropped_{0};
  mutable std::atomic<uint64_t> torn_skipped_{0};
  std::atomic<uint64_t> trace_ids_{0};
  std::chrono::steady_clock::time_point epoch_;
  uint64_t epoch_steady_ns_ = 0;
  uint64_t sink_id_;  ///< process-unique, keys the thread_local ring cache
};

/// What flows on align::ExecContext: which sink (if any) to record into,
/// the id of the request being traced, and — when hardware-counter
/// attribution is on — the PMU session and the registry that aggregates
/// per-ISA×kernel×width deltas. Copyable, plain pointers.
struct TraceContext {
  TraceSink* sink = nullptr;
  uint64_t trace_id = 0;
  /// Non-null enables span-scoped counter reads (degrades internally).
  PmuSession* pmu = nullptr;
  /// Non-null aggregates kernel-span PMU deltas (set_kernel() selects the
  /// attribution cell together with set_isa()/set_width_bits()).
  perf::MetricsRegistry* registry = nullptr;
  bool active() const noexcept { return sink != nullptr || pmu != nullptr; }
};

/// RAII span. With an inactive context the constructor, every setter, and
/// the destructor reduce to one branch — the pay-for-what-you-use
/// guarantee tested by test_perf.cpp (TracingOverhead.*).
class Span {
 public:
  Span() = default;
  Span(const TraceContext& ctx, const char* name) noexcept {
    if (ctx.active()) begin(ctx, name);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  void set_isa(simd::Isa isa) noexcept {
    if (live_) ev_.isa = isa;
  }
  void set_width_bits(uint16_t bits) noexcept {
    if (live_) ev_.width_bits = bits;
  }
  void set_lanes(uint32_t lanes) noexcept {
    if (live_) ev_.lanes = lanes;
  }
  void set_ilp(uint8_t k) noexcept {
    if (live_) ev_.ilp = k;
  }
  void add_cells(uint64_t cells) noexcept {
    if (live_) ev_.cells += cells;
  }
  void set_useful_cells(uint64_t cells) noexcept {
    if (live_) ev_.useful_cells = cells;
  }
  void set_index(uint64_t index) noexcept {
    if (live_) ev_.index = index;
  }
  void set_trunc(TruncCause cause) noexcept {
    if (live_) ev_.trunc = cause;
  }
  /// Mark this span as kernel work of the given family; with a registry on
  /// the context its PMU delta is aggregated under
  /// (isa, kernel, width_bits) when the span ends.
  void set_kernel(perf::KernelVariant variant) noexcept {
    if (live_) {
      kernel_ = variant;
      has_kernel_ = true;
    }
  }

  /// Record the span now (idempotent; the destructor is then a no-op).
  void end() noexcept {
    if (live_) finish();
  }

 private:
  void begin(const TraceContext& ctx, const char* name) noexcept;
  void finish() noexcept;

  bool live_ = false;
  bool has_kernel_ = false;
  perf::KernelVariant kernel_{};
  TraceSink* sink_ = nullptr;
  PmuSession* pmu_ = nullptr;
  perf::MetricsRegistry* registry_ = nullptr;
  PmuReading start_{};
  TraceEvent ev_{};
};

}  // namespace swve::obs
