// Async structured JSON-lines logging.
//
// The serving stack needs edge-of-system events (connection churn,
// protocol errors, rejects, slow requests) as machine-parseable lines
// without putting formatting or write(2) on the request path. The Logger
// reuses the TraceSink recipe: each producing thread owns a fixed-size
// ring it alone writes, a background flusher drains all rings on a short
// period, and everything that can't fit is counted, never blocked on.
//
// Per-ring ordering is single-producer/single-consumer: the producer
// publishes records with a release store of the ring head, the flusher
// acquires the head, copies the records out, and releases the tail back.
// No seqlock is needed (unlike TraceSink, slots are never overwritten
// while readable) and the scheme is clean under TSan.
//
// Call sites log through the process-global logger:
//
//   obs::log_warn("server.protocol_error",
//                 {{"conn", cid}, {"status", "bad_magic"}});
//
// When no logger is installed this is one relaxed load and a branch.
// Records carry an event name (a static string — it doubles as the
// rate-limit key) plus up to kMaxLogFields typed key=value fields;
// string values are truncated into a fixed inline buffer so a record is
// trivially copyable and the producer path never allocates.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace swve::obs {

enum class LogLevel : uint8_t { Debug = 0, Info = 1, Warn = 2, Error = 3 };

const char* log_level_name(LogLevel level) noexcept;

/// One typed field value. Strings are copied inline (truncated to
/// kMaxStringBytes-1 chars) so records stay POD for the ring.
struct LogValue {
  enum class Kind : uint8_t { I64, U64, F64, Bool, Str };
  static constexpr size_t kMaxStringBytes = 48;

  Kind kind = Kind::I64;
  union {
    int64_t i;
    uint64_t u;
    double f;
    bool b;
  };
  char s[kMaxStringBytes];

  LogValue() : i(0) { s[0] = '\0'; }
};

struct LogField {
  const char* key = "";
  LogValue value;

  LogField() = default;
  LogField(const char* k, int v) : key(k) {
    value.kind = LogValue::Kind::I64;
    value.i = v;
  }
  LogField(const char* k, long v) : key(k) {
    value.kind = LogValue::Kind::I64;
    value.i = v;
  }
  LogField(const char* k, long long v) : key(k) {
    value.kind = LogValue::Kind::I64;
    value.i = v;
  }
  LogField(const char* k, unsigned v) : key(k) {
    value.kind = LogValue::Kind::U64;
    value.u = v;
  }
  LogField(const char* k, unsigned long v) : key(k) {
    value.kind = LogValue::Kind::U64;
    value.u = v;
  }
  LogField(const char* k, unsigned long long v) : key(k) {
    value.kind = LogValue::Kind::U64;
    value.u = v;
  }
  LogField(const char* k, double v) : key(k) {
    value.kind = LogValue::Kind::F64;
    value.f = v;
  }
  LogField(const char* k, bool v) : key(k) {
    value.kind = LogValue::Kind::Bool;
    value.b = v;
  }
  LogField(const char* k, std::string_view v) : key(k) {
    value.kind = LogValue::Kind::Str;
    const size_t n = v.size() < LogValue::kMaxStringBytes - 1
                         ? v.size()
                         : LogValue::kMaxStringBytes - 1;
    std::memcpy(value.s, v.data(), n);
    value.s[n] = '\0';
  }
  LogField(const char* k, const char* v) : LogField(k, std::string_view(v)) {}
  LogField(const char* k, const std::string& v)
      : LogField(k, std::string_view(v)) {}
};

inline constexpr size_t kMaxLogFields = 6;

/// One ring slot. Trivially copyable; the event name must be a string
/// with static storage duration (it is also the rate-limit site key).
struct LogRecord {
  uint64_t ts_us = 0;  ///< wall clock, microseconds since the Unix epoch
  LogLevel level = LogLevel::Info;
  uint8_t nfields = 0;
  const char* event = "";
  LogField fields[kMaxLogFields];
};

struct LoggerOptions {
  LogLevel min_level = LogLevel::Info;  ///< records below this are dropped
  int fd = 2;                 ///< primary sink (stderr); -1 disables
  std::string path;           ///< optional file sink, opened O_APPEND
  size_t ring_capacity = 256; ///< records per producing thread
  unsigned max_threads = 32;  ///< distinct producing threads
  double flush_period_s = 0.05;
  /// Per event-site records per second before suppression (0 = unlimited).
  uint64_t rate_limit_per_sec = 0;
};

/// Async JSON-lines logger. Construct, optionally install_global(), log.
/// The destructor drains every ring before closing sinks — no records
/// accepted before destruction are lost (only counted drops are).
class Logger {
 public:
  explicit Logger(const LoggerOptions& options = {});
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Enqueue one record (drops below min_level, over rate limit, on ring
  /// overflow, or past max_threads — each drop is counted). Never blocks,
  /// never allocates.
  void log(LogLevel level, const char* event,
           std::initializer_list<LogField> fields) noexcept;

  bool enabled(LogLevel level) const noexcept {
    return level >= opts_.min_level;
  }

  /// Synchronous, async-signal-safe last-gasp line: snprintf into a stack
  /// buffer, write(2) straight to the sinks, bypassing the rings. For the
  /// flight recorder's fatal path.
  void write_fatal_line(const char* event, const char* reason) noexcept;

  /// Block until everything enqueued so far has been written.
  void flush();

  // Drop/throughput accounting (relaxed reads, for metrics + tests).
  uint64_t emitted() const noexcept;
  uint64_t dropped_overflow() const noexcept;
  uint64_t dropped_threads() const noexcept;
  uint64_t suppressed() const noexcept;

  const LoggerOptions& options() const noexcept { return opts_; }

  /// Process-global logger used by the log_*() helpers. install_global
  /// publishes `logger` (replacing any previous one); the destructor
  /// un-publishes itself. Callers own lifetime — install in main() before
  /// the threads that log, destroy after them.
  static void install_global(Logger* logger) noexcept;
  static Logger* global() noexcept;

 private:
  struct Ring {
    std::unique_ptr<LogRecord[]> slots;
    /// Producer-owned; flusher acquires.
    std::atomic<uint64_t> head{0};
    /// Flusher-owned; producer acquires for the capacity check.
    std::atomic<uint64_t> tail{0};
  };

  /// Per event-site token bucket for rate limiting; open-addressed on the
  /// event string pointer. Approximate by design: windows race benignly.
  struct Site {
    std::atomic<const char*> event{nullptr};
    std::atomic<uint64_t> window_s{0};
    std::atomic<uint64_t> count{0};
  };
  static constexpr size_t kSites = 64;

  int ring_index() noexcept;
  bool over_rate_limit(const char* event) noexcept;
  void flusher_loop();
  /// Drain every ring once; append formatted lines to `buf`, then write.
  void drain_once(std::string& buf);

  LoggerOptions opts_;
  size_t capacity_;
  unsigned max_threads_;
  std::unique_ptr<Ring[]> rings_;
  std::unique_ptr<Site[]> sites_;
  int file_fd_ = -1;
  uint64_t logger_id_;
  std::atomic<unsigned> registered_{0};
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> dropped_overflow_{0};
  std::atomic<uint64_t> dropped_threads_{0};
  std::atomic<uint64_t> suppressed_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  uint64_t flush_seq_ = 0;   ///< completed drain passes (for flush())
  std::thread flusher_;
};

/// Helpers against the global logger; no-ops (one relaxed load + branch)
/// when none is installed.
void log_debug(const char* event,
               std::initializer_list<LogField> fields = {}) noexcept;
void log_info(const char* event,
              std::initializer_list<LogField> fields = {}) noexcept;
void log_warn(const char* event,
              std::initializer_list<LogField> fields = {}) noexcept;
void log_error(const char* event,
               std::initializer_list<LogField> fields = {}) noexcept;

/// Parse "debug" / "info" / "warn" / "error"; defaults to Info.
LogLevel log_level_from_string(std::string_view s) noexcept;

}  // namespace swve::obs
