// Span-scoped hardware-counter attribution (perf_event counter groups).
//
// The paper's analysis (top-down pipeline slots, §IV; effective-frequency
// recalibration, §IV-E) needs per-kernel hardware evidence: which
// ISA×kernel×width combination is stalling, missing cache, or running at a
// throttled clock. perf::topdown_analyze wraps one whole workload in
// one-shot counters; this module makes the same counters *span-scoped* so
// every chunk.* trace span carries cycle/instruction/stall/miss deltas and
// a derived effective-frequency estimate (the AVX-512 license-throttling
// signal) at negligible cost.
//
// Design:
//   * One perf_event counter *group* per recording thread (leader: cycles;
//     members: instructions, frontend/backend stall cycles, LLC misses,
//     branch misses), opened lazily on first use and left running for the
//     thread's lifetime. A group schedules atomically, so member ratios
//     (IPC, stall fractions) are consistent even under multiplexing.
//   * Reading is one read(2) of the leader — a start/stop delta costs two
//     syscalls per span, paid only at chunk granularity (per database
//     partition / per 32-lane batch), never inside kernel loops.
//   * Graceful degradation everywhere: EPERM/EACCES (perf_event_paranoid),
//     ENOENT/ENODEV (no PMU: VMs, containers), or SWVE_PMU=off all fall
//     back to wall-clock-only readings with hw=false; callers surface the
//     state as a `pmu_unavailable` gauge. Alignment results are identical
//     either way — the counters only observe.
#pragma once

#include <cstdint>

namespace swve::obs {

/// Steady-clock nanoseconds (arbitrary epoch); the time base shared by
/// PmuReading, InFlightTable, and the watchdog.
uint64_t steady_now_ns() noexcept;

/// Point-in-time counter values for the calling thread. Monotone while the
/// thread lives; subtract two readings with PmuSession::delta().
struct PmuReading {
  bool hw = false;            ///< hardware values below are valid
  uint64_t ns = 0;            ///< steady_now_ns() at the read (always valid)
  uint64_t time_enabled = 0;  ///< group enabled time (multiplex scaling)
  uint64_t time_running = 0;  ///< group on-PMU time
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t stall_frontend = 0;
  uint64_t stall_backend = 0;
  uint64_t llc_misses = 0;
  uint64_t branch_misses = 0;
};

/// Counter deltas over a span, multiplex-scaled. With hw=false only
/// wall_ns is meaningful (the software-clock fallback).
struct PmuDelta {
  bool hw = false;
  uint64_t wall_ns = 0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t stall_frontend = 0;
  uint64_t stall_backend = 0;
  uint64_t llc_misses = 0;
  uint64_t branch_misses = 0;
  double scale = 1.0;  ///< time_enabled/time_running correction applied

  double ipc() const noexcept {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  double frontend_stall_fraction() const noexcept {
    return cycles > 0 ? static_cast<double>(stall_frontend) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  double backend_stall_fraction() const noexcept {
    return cycles > 0 ? static_cast<double>(stall_backend) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  /// Cycles per wall nanosecond == effective GHz of the thread over the
  /// span. An AVX-512 span reporting markedly lower GHz than its AVX2
  /// neighbours is the license-throttling signature of the paper's §IV-E.
  double effective_ghz() const noexcept {
    return wall_ns > 0
               ? static_cast<double>(cycles) / static_cast<double>(wall_ns)
               : 0.0;
  }
};

/// Process-wide manager for per-thread counter groups. All methods are
/// thread-safe; read() touches only the calling thread's group.
class PmuSession {
 public:
  enum class State : int {
    Unknown = 0,   ///< not probed yet
    Available,     ///< counter groups open and counting
    Disabled,      ///< SWVE_PMU=off
    Eperm,         ///< perf_event_paranoid locked down (or simulated)
    Enoent,        ///< no PMU: VM/container without hardware events
  };

  static PmuSession& instance() noexcept;

  /// Probe (once) and report whether hardware counters work here.
  bool available() noexcept { return state() == State::Available; }
  State state() noexcept;
  /// "", "disabled", "eperm", or "enoent".
  const char* unavailable_reason() noexcept;

  /// Read the calling thread's counter group (opening it on first use).
  /// Always fills `ns`; hw=false when degraded.
  PmuReading read() noexcept;

  /// end - begin, multiplex-scaled; hw only if both readings were hw.
  static PmuDelta delta(const PmuReading& begin,
                        const PmuReading& end) noexcept;

  /// Force the availability state for tests: "eperm" and "off" simulate the
  /// locked-down / disabled paths, nullptr re-probes the real hardware.
  /// Already-open per-thread groups are bypassed, not closed.
  void simulate_for_test(const char* mode) noexcept;

 private:
  PmuSession() = default;
};

}  // namespace swve::obs
