#include "obs/timeseries.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace swve::obs {

namespace {

using perf::MetricsSnapshot;

constexpr const char* kSeriesNames[] = {
    "qps",   "tiers", "latency", "cache",   "gcups",
    "queue", "log",   "pmu",     "lengths", "freq",
    "shards",
};

// printf-append with a stack buffer; every call site stays under 512 bytes.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<size_t>(n), sizeof buf - 1));
}

/// Comma-separated selector: does `series` (empty = everything) name `key`?
bool selected(std::string_view series, std::string_view key) {
  if (series.empty()) return true;
  size_t pos = 0;
  while (pos <= series.size()) {
    size_t comma = series.find(',', pos);
    if (comma == std::string_view::npos) comma = series.size();
    std::string_view tok = series.substr(pos, comma - pos);
    while (!tok.empty() && tok.front() == ' ') tok.remove_prefix(1);
    while (!tok.empty() && tok.back() == ' ') tok.remove_suffix(1);
    if (tok == key) return true;
    pos = comma + 1;
  }
  return false;
}

uint64_t error_total(const MetricsSnapshot& s) noexcept {
  return s.rejected_queue_full + s.deadline_expired + s.invalid_request +
         s.aborted;
}

uint64_t log_drop_total(const MetricsSnapshot& s) noexcept {
  return s.log_dropped_overflow + s.log_dropped_threads + s.log_suppressed;
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(TimeSeriesOptions options) : opt_(options) {
  if (opt_.cadence_s <= 0) opt_.cadence_s = 1.0;
  if (opt_.capacity == 0) opt_.capacity = 1;
}

void TimeSeriesStore::push(const perf::MetricsSnapshot& snap, double t_s,
                           uint64_t queue_depth) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!have_prev_ || t_s <= prev_t_s_) {
    // First push, or a non-advancing clock: (re)seed the baseline.
    prev_ = snap;
    prev_t_s_ = t_s;
    have_prev_ = true;
    return;
  }
  const double dt = t_s - prev_t_s_;

  TimeSeriesPoint p;
  p.t_s = t_s;
  p.dt_s = dt;
  p.queue_depth = queue_depth;

  p.completed_delta = perf::counter_delta(snap.completed, prev_.completed);
  p.submitted_delta = perf::counter_delta(snap.submitted, prev_.submitted);
  p.error_delta = perf::counter_delta(error_total(snap), error_total(prev_));
  p.qps = perf::delta_rate(snap.completed, prev_.completed, dt);
  p.error_qps = static_cast<double>(p.error_delta) / dt;

  for (int t = 0; t < MetricsSnapshot::kQosTiers; ++t) {
    uint64_t now_n = 0, prev_n = 0;
    for (int sc = 0; sc < MetricsSnapshot::kScenarios; ++sc) {
      now_n += snap.tier_requests[t][sc];
      prev_n += prev_.tier_requests[t][sc];
    }
    p.tier_qps[t] = perf::delta_rate(now_n, prev_n, dt);
    const perf::LatencyHistogram::Snapshot d =
        perf::LatencyHistogram::Snapshot::subtract(snap.tier_latency[t],
                                                   prev_.tier_latency[t]);
    p.tier_p50_s[t] = d.p50_s;
    p.tier_p99_s[t] = d.p99_s;
    p.latency = perf::LatencyHistogram::Snapshot::merge(p.latency, d);
  }

  p.cache_hit_rate = perf::delta_ratio(
      snap.result_cache_hits, prev_.result_cache_hits,
      snap.result_cache_hits + snap.result_cache_misses,
      prev_.result_cache_hits + prev_.result_cache_misses);
  const uint64_t cells_d = perf::counter_delta(snap.cells, prev_.cells);
  const double ks_d = std::max(0.0, snap.kernel_seconds - prev_.kernel_seconds);
  p.gcups = ks_d > 0 ? static_cast<double>(cells_d) / ks_d / 1e9 : 0.0;
  p.log_drops =
      perf::counter_delta(log_drop_total(snap), log_drop_total(prev_));

  for (int i = 0; i < MetricsSnapshot::kIsas; ++i) {
    for (int k = 0; k < MetricsSnapshot::kKernelVariants; ++k) {
      for (int w = 0; w < MetricsSnapshot::kWidths; ++w) {
        const perf::PmuSample& now = snap.pmu[i][k][w];
        const perf::PmuSample& was = prev_.pmu[i][k][w];
        perf::PmuSample d;
        d.samples = perf::counter_delta(now.samples, was.samples);
        d.wall_ns = perf::counter_delta(now.wall_ns, was.wall_ns);
        d.cycles = perf::counter_delta(now.cycles, was.cycles);
        d.instructions =
            perf::counter_delta(now.instructions, was.instructions);
        d.stall_backend =
            perf::counter_delta(now.stall_backend, was.stall_backend);
        if (d.cycles == 0) continue;
        TimeSeriesPoint::PmuCellPoint cell;
        cell.isa = static_cast<uint8_t>(i);
        cell.kernel = static_cast<uint8_t>(k);
        cell.width = static_cast<uint8_t>(w);
        cell.spans = d.samples;
        cell.ipc = d.ipc();
        cell.backend_stall_fraction = d.backend_stall_fraction();
        cell.effective_ghz = d.effective_ghz();
        p.pmu.push_back(cell);
      }
    }
  }
  p.avx512_frequency_ratio = snap.avx512_frequency_ratio();

  for (uint32_t i = 0; i < snap.shard_count &&
                       i < MetricsSnapshot::kMaxShards;
       ++i) {
    const auto& now = snap.shards[i];
    // A shard missing from the previous snapshot (count grew) deltas
    // against zeroes, which counter_delta already handles.
    const auto& was = prev_.shards[i];
    TimeSeriesPoint::ShardPoint sp;
    sp.shard = static_cast<uint8_t>(i);
    sp.node = now.node;
    const uint64_t cells_delta = perf::counter_delta(now.cells, was.cells);
    const double busy_d = std::max(0.0, now.busy_seconds - was.busy_seconds);
    sp.gcups =
        busy_d > 0 ? static_cast<double>(cells_delta) / busy_d / 1e9 : 0.0;
    sp.searches = perf::counter_delta(now.searches, was.searches);
    sp.llc_misses = perf::counter_delta(now.llc_misses, was.llc_misses);
    sp.queue_depth = now.queue_depth;
    p.shards.push_back(sp);
  }

  uint64_t dominant_n = 0;
  for (int b = 0; b < MetricsSnapshot::kLengthBins; ++b) {
    p.length_bins[b] = perf::counter_delta(snap.query_length_bins[b],
                                           prev_.query_length_bins[b]);
    if (p.length_bins[b] > dominant_n) {
      dominant_n = p.length_bins[b];
      p.dominant_length_bin = b;
    }
  }

  ring_.push_back(std::move(p));
  while (ring_.size() > opt_.capacity) ring_.pop_front();
  prev_ = snap;
  prev_t_s_ = t_s;
}

std::vector<TimeSeriesPoint> TimeSeriesStore::points(double window_s) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TimeSeriesPoint> out;
  if (ring_.empty()) return out;
  const double cutoff =
      window_s > 0 ? ring_.back().t_s - window_s : -1e300;
  for (const TimeSeriesPoint& p : ring_)
    if (p.t_s >= cutoff) out.push_back(p);
  return out;
}

bool TimeSeriesStore::latest(TimeSeriesPoint* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (ring_.empty()) return false;
  if (out) *out = ring_.back();
  return true;
}

size_t TimeSeriesStore::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ring_.size();
}

bool TimeSeriesStore::is_series_name(std::string_view name) {
  for (const char* k : kSeriesNames)
    if (name == k) return true;
  return false;
}

std::string TimeSeriesStore::json(std::string_view series,
                                  double window_s) const {
  const std::vector<TimeSeriesPoint> snap = points(window_s);
  std::string out;
  appendf(out, "{\"cadence_s\":%.6g,\"capacity\":%zu,\"points\":[",
          opt_.cadence_s, opt_.capacity);
  for (size_t n = 0; n < snap.size(); ++n) {
    const TimeSeriesPoint& p = snap[n];
    appendf(out, "%s\n{\"t_s\":%.3f,\"dt_s\":%.3f", n ? "," : "", p.t_s,
            p.dt_s);
    if (selected(series, "qps"))
      appendf(out,
              ",\"qps\":%.6g,\"error_qps\":%.6g,\"completed\":%" PRIu64
              ",\"errors\":%" PRIu64,
              p.qps, p.error_qps, p.completed_delta, p.error_delta);
    if (selected(series, "tiers")) {
      out += ",\"tiers\":[";
      for (int t = 0; t < MetricsSnapshot::kQosTiers; ++t)
        appendf(out,
                "%s{\"tier\":\"%s\",\"qps\":%.6g,\"p50_ms\":%.6g,"
                "\"p99_ms\":%.6g}",
                t ? "," : "", perf::qos_tier_label(t), p.tier_qps[t],
                p.tier_p50_s[t] * 1e3, p.tier_p99_s[t] * 1e3);
      out += "]";
    }
    if (selected(series, "latency"))
      appendf(out,
              ",\"latency\":{\"count\":%" PRIu64
              ",\"p50_ms\":%.6g,\"p99_ms\":%.6g}",
              p.latency.count, p.latency.p50_s * 1e3, p.latency.p99_s * 1e3);
    if (selected(series, "cache"))
      appendf(out, ",\"cache_hit_rate\":%.6g", p.cache_hit_rate);
    if (selected(series, "gcups")) appendf(out, ",\"gcups\":%.6g", p.gcups);
    if (selected(series, "queue"))
      appendf(out, ",\"queue_depth\":%" PRIu64, p.queue_depth);
    if (selected(series, "log"))
      appendf(out, ",\"log_drops\":%" PRIu64, p.log_drops);
    if (selected(series, "pmu")) {
      out += ",\"pmu\":[";
      for (size_t c = 0; c < p.pmu.size(); ++c) {
        const TimeSeriesPoint::PmuCellPoint& cell = p.pmu[c];
        appendf(out,
                "%s{\"isa\":\"%s\",\"kernel\":\"%s\",\"width\":%u,"
                "\"spans\":%" PRIu64
                ",\"ipc\":%.4g,\"stall_be\":%.4g,\"ghz\":%.4g}",
                c ? "," : "",
                simd::isa_name(static_cast<simd::Isa>(cell.isa)),
                perf::kernel_variant_name(
                    static_cast<perf::KernelVariant>(cell.kernel)),
                MetricsSnapshot::width_bits_at(cell.width), cell.spans,
                cell.ipc, cell.backend_stall_fraction, cell.effective_ghz);
      }
      out += "]";
    }
    if (selected(series, "freq"))
      appendf(out, ",\"avx512_freq_ratio\":%.4g", p.avx512_frequency_ratio);
    if (selected(series, "shards") && !p.shards.empty()) {
      out += ",\"shards\":[";
      for (size_t c = 0; c < p.shards.size(); ++c) {
        const TimeSeriesPoint::ShardPoint& sh = p.shards[c];
        appendf(out,
                "%s{\"shard\":%u,\"node\":%d,\"gcups\":%.4g,"
                "\"searches\":%" PRIu64 ",\"queue_depth\":%" PRIu64
                ",\"llc_misses\":%" PRIu64 "}",
                c ? "," : "", sh.shard, sh.node, sh.gcups, sh.searches,
                sh.queue_depth, sh.llc_misses);
      }
      out += "]";
    }
    if (selected(series, "lengths")) {
      out += ",\"length_bins\":[";
      for (int b = 0; b < MetricsSnapshot::kLengthBins; ++b)
        appendf(out, "%s%" PRIu64, b ? "," : "", p.length_bins[b]);
      appendf(out, "],\"dominant_length_bin\":%d", p.dominant_length_bin);
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace swve::obs
