#include "obs/pmu.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace swve::obs {

uint64_t steady_now_ns() noexcept {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

std::atomic<int> g_state{static_cast<int>(PmuSession::State::Unknown)};

#if defined(__linux__)

// Logical counters, in PmuReading field order. The leader (cycles) must
// open; members are best-effort — a CPU without stall-cycle events still
// delivers cycles/instructions/misses.
struct EventSpec {
  uint64_t config;
};
constexpr EventSpec kEvents[] = {
    {PERF_COUNT_HW_CPU_CYCLES},
    {PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_COUNT_HW_STALLED_CYCLES_FRONTEND},
    {PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
    {PERF_COUNT_HW_CACHE_MISSES},
    {PERF_COUNT_HW_BRANCH_MISSES},
};
constexpr int kNumEvents = sizeof(kEvents) / sizeof(kEvents[0]);

int open_event(uint64_t config, int group_fd, bool leader) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  attr.disabled = leader ? 1 : 0;  // the whole group starts via the leader
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  if (leader)
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

/// One counter group owned by (and bound to) a single thread; fds close on
/// thread exit via the thread_local destructor.
struct ThreadGroup {
  int fd[kNumEvents];       // fd[i] < 0: event unavailable on this CPU
  int slot[kNumEvents];     // position of event i in the group read buffer
  int members = 0;          // events that actually opened
  bool tried = false;

  ThreadGroup() {
    for (int i = 0; i < kNumEvents; ++i) {
      fd[i] = -1;
      slot[i] = -1;
    }
  }
  ~ThreadGroup() {
    for (int i = 0; i < kNumEvents; ++i)
      if (fd[i] >= 0) close(fd[i]);
  }

  /// Open the group; returns 0 on success or the errno of the leader open.
  int open() {
    tried = true;
    fd[0] = open_event(kEvents[0].config, -1, /*leader=*/true);
    if (fd[0] < 0) return errno != 0 ? errno : ENOENT;
    slot[0] = members++;
    for (int i = 1; i < kNumEvents; ++i) {
      fd[i] = open_event(kEvents[i].config, fd[0], /*leader=*/false);
      if (fd[i] >= 0) slot[i] = members++;
    }
    ioctl(fd[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(fd[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    return 0;
  }

  bool ok() const { return fd[0] >= 0; }

  bool read_group(PmuReading& r) const {
    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
    uint64_t buf[3 + kNumEvents] = {};
    const ssize_t want =
        static_cast<ssize_t>((3 + static_cast<size_t>(members)) * 8);
    if (::read(fd[0], buf, sizeof buf) < want) return false;
    r.time_enabled = buf[1];
    r.time_running = buf[2];
    uint64_t v[kNumEvents];
    for (int i = 0; i < kNumEvents; ++i)
      v[i] = slot[i] >= 0 ? buf[3 + slot[i]] : 0;
    r.cycles = v[0];
    r.instructions = v[1];
    r.stall_frontend = v[2];
    r.stall_backend = v[3];
    r.llc_misses = v[4];
    r.branch_misses = v[5];
    r.hw = true;
    return true;
  }
};

ThreadGroup& thread_group() {
  thread_local ThreadGroup group;
  return group;
}

PmuSession::State classify_errno(int err) {
  return (err == EPERM || err == EACCES) ? PmuSession::State::Eperm
                                         : PmuSession::State::Enoent;
}

#endif  // __linux__

PmuSession::State env_state() {
  const char* env = std::getenv("SWVE_PMU");
  if (env == nullptr) return PmuSession::State::Unknown;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0)
    return PmuSession::State::Disabled;
  if (std::strcmp(env, "eperm") == 0) return PmuSession::State::Eperm;
  return PmuSession::State::Unknown;  // anything else: probe normally
}

}  // namespace

PmuSession& PmuSession::instance() noexcept {
  static PmuSession session;
  return session;
}

PmuSession::State PmuSession::state() noexcept {
  int s = g_state.load(std::memory_order_acquire);
  if (s != static_cast<int>(State::Unknown)) return static_cast<State>(s);

  State probed = env_state();
#if defined(__linux__)
  if (probed == State::Unknown) {
    ThreadGroup& g = thread_group();
    const int err = g.tried ? (g.ok() ? 0 : ENOENT) : g.open();
    probed = err == 0 ? State::Available : classify_errno(err);
  }
#else
  if (probed == State::Unknown) probed = State::Enoent;
#endif
  // First probe wins; a concurrent prober reached the same conclusion
  // (env/kernel state does not change between the races we care about).
  int expected = static_cast<int>(State::Unknown);
  g_state.compare_exchange_strong(expected, static_cast<int>(probed),
                                  std::memory_order_acq_rel);
  return static_cast<State>(g_state.load(std::memory_order_acquire));
}

const char* PmuSession::unavailable_reason() noexcept {
  switch (state()) {
    case State::Available: return "";
    case State::Disabled: return "disabled";
    case State::Eperm: return "eperm";
    case State::Enoent: return "enoent";
    case State::Unknown: break;
  }
  return "unknown";
}

PmuReading PmuSession::read() noexcept {
  PmuReading r;
  r.ns = steady_now_ns();
  if (state() != State::Available) return r;
#if defined(__linux__)
  ThreadGroup& g = thread_group();
  if (!g.tried) g.open();  // a worker thread's first span opens its group
  if (g.ok()) g.read_group(r);
#endif
  return r;
}

PmuDelta PmuSession::delta(const PmuReading& begin,
                           const PmuReading& end) noexcept {
  PmuDelta d;
  d.wall_ns = end.ns > begin.ns ? end.ns - begin.ns : 0;
  if (!begin.hw || !end.hw) return d;
  const auto sub = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
  const uint64_t dte = sub(end.time_enabled, begin.time_enabled);
  const uint64_t dtr = sub(end.time_running, begin.time_running);
  // Multiplex scaling: with more group members than hardware counters the
  // kernel time-slices the whole group; scale observed counts up by
  // enabled/running. Ratios (IPC, stall fractions) are unaffected because
  // the group schedules atomically.
  d.scale = (dtr > 0 && dte > dtr)
                ? static_cast<double>(dte) / static_cast<double>(dtr)
                : 1.0;
  const auto scaled = [&](uint64_t a, uint64_t b) {
    const uint64_t raw = a > b ? a - b : 0;
    return d.scale == 1.0
               ? raw
               : static_cast<uint64_t>(static_cast<double>(raw) * d.scale);
  };
  d.cycles = scaled(end.cycles, begin.cycles);
  d.instructions = scaled(end.instructions, begin.instructions);
  d.stall_frontend = scaled(end.stall_frontend, begin.stall_frontend);
  d.stall_backend = scaled(end.stall_backend, begin.stall_backend);
  d.llc_misses = scaled(end.llc_misses, begin.llc_misses);
  d.branch_misses = scaled(end.branch_misses, begin.branch_misses);
  d.hw = true;
  return d;
}

void PmuSession::simulate_for_test(const char* mode) noexcept {
  State s = State::Unknown;
  if (mode != nullptr) {
    if (std::strcmp(mode, "eperm") == 0) s = State::Eperm;
    else if (std::strcmp(mode, "off") == 0) s = State::Disabled;
    else if (std::strcmp(mode, "enoent") == 0) s = State::Enoent;
  }
  g_state.store(static_cast<int>(s), std::memory_order_release);
}

}  // namespace swve::obs
