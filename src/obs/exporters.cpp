#include "obs/exporters.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "core/mapped_db.hpp"

namespace swve::obs {

namespace {

using perf::KernelVariant;
using perf::LatencyHistogram;
using perf::MetricsSnapshot;

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

// ---------------------------------------------------------------- Prometheus

void prom_header(std::string& out, const char* name, const char* help,
                 const char* type) {
  out += "# HELP ";
  out += name;
  out += " ";
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += " ";
  out += type;
  out += "\n";
}

/// One histogram series. `labels` is a prefix spliced before the `le`
/// label (e.g. "tier=\"interactive\","), empty for an unlabeled family;
/// the caller emits prom_header once per family, not per series.
void prom_histogram_series(std::string& out, const char* name,
                           const char* labels,
                           const LatencyHistogram::Snapshot& h) {
  uint64_t cum = 0;
  for (int i = 0; i < LatencyHistogram::kBuckets - 1; ++i) {
    cum += h.buckets[i];
    appendf(out, "%s_bucket{%sle=\"%g\"} %" PRIu64 "\n", name, labels,
            LatencyHistogram::bucket_upper_seconds(i), cum);
  }
  appendf(out, "%s_bucket{%sle=\"+Inf\"} %" PRIu64 "\n", name, labels,
          h.count);
  if (labels[0] == '\0') {
    appendf(out, "%s_sum %.9g\n", name,
            h.mean_s * static_cast<double>(h.count));
    appendf(out, "%s_count %" PRIu64 "\n", name, h.count);
  } else {
    char trimmed[64];  // the prefix without its trailing comma
    std::snprintf(trimmed, sizeof trimmed, "%s", labels);
    if (const size_t n = std::strlen(trimmed); n > 0 && trimmed[n - 1] == ',')
      trimmed[n - 1] = '\0';
    appendf(out, "%s_sum{%s} %.9g\n", name, trimmed,
            h.mean_s * static_cast<double>(h.count));
    appendf(out, "%s_count{%s} %" PRIu64 "\n", name, trimmed, h.count);
  }
}

void prom_histogram(std::string& out, const char* name, const char* help,
                    const LatencyHistogram::Snapshot& h) {
  prom_header(out, name, help, "histogram");
  prom_histogram_series(out, name, "", h);
}

/// JSON string-body escape for the same runtime strings (the exporters
/// build JSON by hand; a quote in __VERSION__ must not break the object).
std::string json_escape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          appendf(out, "\\u%04x", static_cast<unsigned>(c) & 0xff);
        else
          out += c;
    }
  }
  return out;
}

}  // namespace

std::string prom_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

BuildInfo build_info() noexcept {
  BuildInfo b;
#ifdef SWVE_VERSION
  b.version = SWVE_VERSION;
#else
  b.version = "1.0.0";
#endif
#ifdef __VERSION__
  b.compiler = __VERSION__;
#else
  b.compiler = "unknown";
#endif
  b.isas =
      "scalar"
#ifdef SWVE_HAVE_SSE41_BUILD
      "+sse41"
#endif
#ifdef SWVE_HAVE_AVX2_BUILD
      "+avx2"
#endif
#ifdef SWVE_HAVE_AVX512_BUILD
      "+avx512"
#endif
      ;
  return b;
}

std::optional<MetricsFormat> metrics_format_from_string(const std::string& s) {
  if (s == "text") return MetricsFormat::Text;
  if (s == "prom" || s == "prometheus") return MetricsFormat::Prometheus;
  if (s == "json") return MetricsFormat::Json;
  return std::nullopt;
}

std::string render_metrics(const MetricsSnapshot& snapshot,
                           MetricsFormat format, const SloStatus* slo) {
  switch (format) {
    case MetricsFormat::Text: return snapshot.to_string();
    case MetricsFormat::Prometheus:
      return to_prometheus(snapshot, build_info(), slo);
    case MetricsFormat::Json: return to_json(snapshot, slo);
  }
  return snapshot.to_string();
}

std::string to_prometheus(const MetricsSnapshot& s) {
  return to_prometheus(s, build_info(), nullptr);
}

std::string to_prometheus(const MetricsSnapshot& s, const BuildInfo& b,
                          const SloStatus* slo) {
  std::string out;
  out.reserve(4096);

  prom_header(out, "swve_build_info",
              "Build identity; value is always 1, facts are labels", "gauge");
  appendf(out,
          "swve_build_info{version=\"%s\",compiler=\"%s\",isas=\"%s\"} 1\n",
          prom_escape_label(b.version).c_str(),
          prom_escape_label(b.compiler).c_str(),
          prom_escape_label(b.isas).c_str());

  prom_header(out, "swve_requests_submitted_total",
              "Requests accepted into the submission queue", "counter");
  appendf(out, "swve_requests_submitted_total %" PRIu64 "\n", s.submitted);

  prom_header(out, "swve_requests_completed_total",
              "Requests whose future was fulfilled with a result, by scenario",
              "counter");
  appendf(out, "swve_requests_completed_total{scenario=\"pairwise\"} %" PRIu64 "\n",
          s.pairwise);
  appendf(out, "swve_requests_completed_total{scenario=\"search\"} %" PRIu64 "\n",
          s.search);
  appendf(out, "swve_requests_completed_total{scenario=\"batch\"} %" PRIu64 "\n",
          s.batch);

  prom_header(out, "swve_requests_failed_total",
              "Requests that failed their future, by reason", "counter");
  appendf(out, "swve_requests_failed_total{reason=\"queue_full\"} %" PRIu64 "\n",
          s.rejected_queue_full);
  appendf(out, "swve_requests_failed_total{reason=\"deadline\"} %" PRIu64 "\n",
          s.deadline_expired);
  appendf(out, "swve_requests_failed_total{reason=\"invalid\"} %" PRIu64 "\n",
          s.invalid_request);
  appendf(out, "swve_requests_failed_total{reason=\"aborted\"} %" PRIu64 "\n",
          s.aborted);

  prom_header(out, "swve_kernel_cells_total",
              "DP cells computed across completed requests", "counter");
  appendf(out, "swve_kernel_cells_total %" PRIu64 "\n", s.cells);
  prom_header(out, "swve_kernel_seconds_total",
              "Summed kernel execution time", "counter");
  appendf(out, "swve_kernel_seconds_total %.9g\n", s.kernel_seconds);

  prom_header(out, "swve_gcups_aggregate",
              "Lifetime throughput in giga cell updates per second", "gauge");
  appendf(out, "swve_gcups_aggregate %.6g\n", s.aggregate_gcups());
  prom_header(out, "swve_gcups_window",
              "Throughput over the trailing window", "gauge");
  appendf(out, "swve_gcups_window{window_s=\"%d\"} %.6g\n",
          MetricsSnapshot::kWindowSeconds, s.window_gcups());

  prom_header(out, "swve_kernel_target_requests_total",
              "Completed requests by dispatch target", "counter");
  for (int i = 0; i < MetricsSnapshot::kIsas; ++i)
    for (int k = 0; k < MetricsSnapshot::kKernelVariants; ++k)
      if (s.target_requests[i][k] != 0)
        appendf(out,
                "swve_kernel_target_requests_total{isa=\"%s\",kernel=\"%s\"} "
                "%" PRIu64 "\n",
                simd::isa_name(static_cast<simd::Isa>(i)),
                perf::kernel_variant_name(static_cast<KernelVariant>(k)),
                s.target_requests[i][k]);
  prom_header(out, "swve_kernel_target_cells_total",
              "DP cells computed by dispatch target", "counter");
  for (int i = 0; i < MetricsSnapshot::kIsas; ++i)
    for (int k = 0; k < MetricsSnapshot::kKernelVariants; ++k)
      if (s.target_cells[i][k] != 0)
        appendf(out,
                "swve_kernel_target_cells_total{isa=\"%s\",kernel=\"%s\"} "
                "%" PRIu64 "\n",
                simd::isa_name(static_cast<simd::Isa>(i)),
                perf::kernel_variant_name(static_cast<KernelVariant>(k)),
                s.target_cells[i][k]);

  prom_header(out, "swve_batch_cells8_total",
              "8-bit batch-kernel DP cells, padding included", "counter");
  appendf(out, "swve_batch_cells8_total %" PRIu64 "\n", s.batch_cells8);
  prom_header(out, "swve_batch_useful_cells8_total",
              "8-bit batch-kernel DP cells on real residues", "counter");
  appendf(out, "swve_batch_useful_cells8_total %" PRIu64 "\n",
          s.batch_useful_cells8);
  prom_header(out, "swve_batch_packing_efficiency",
              "Useful fraction of batch-kernel work (useful/padded cells)",
              "gauge");
  appendf(out, "swve_batch_packing_efficiency %.6g\n",
          s.batch_packing_efficiency());

  prom_header(out, "swve_query_cache_lookups_total",
              "Prepared-query cache lookups, by result", "counter");
  appendf(out, "swve_query_cache_lookups_total{result=\"hit\"} %" PRIu64 "\n",
          s.query_cache_hits);
  appendf(out, "swve_query_cache_lookups_total{result=\"miss\"} %" PRIu64 "\n",
          s.query_cache_misses);
  prom_header(out, "swve_query_cache_evictions_total",
              "Prepared-query LRU entries displaced at capacity", "counter");
  appendf(out, "swve_query_cache_evictions_total %" PRIu64 "\n",
          s.query_cache_evictions);
  prom_header(out, "swve_query_cache_entries",
              "Prepared-query LRU entries currently cached", "gauge");
  appendf(out, "swve_query_cache_entries %" PRIu64 "\n",
          s.query_cache_entries);
  prom_header(out, "swve_workspace_leases_total",
              "Workspace-pool checkouts, by source", "counter");
  appendf(out, "swve_workspace_leases_total{source=\"pool\"} %" PRIu64 "\n",
          s.workspace_reuses);
  appendf(out, "swve_workspace_leases_total{source=\"alloc\"} %" PRIu64 "\n",
          s.workspace_creates);

  prom_header(out, "swve_pool_threads", "Worker threads in the owned pool",
              "gauge");
  appendf(out, "swve_pool_threads %u\n", s.pool_threads);
  prom_header(out, "swve_pool_jobs_total", "Jobs executed by the pool",
              "counter");
  appendf(out, "swve_pool_jobs_total %" PRIu64 "\n", s.pool_jobs);
  prom_header(out, "swve_pool_busy_seconds_total",
              "Summed busy time across pool workers", "counter");
  appendf(out, "swve_pool_busy_seconds_total %.9g\n", s.pool_busy_seconds);
  prom_header(out, "swve_pool_utilization",
              "Busy fraction of the pool over the service lifetime", "gauge");
  appendf(out, "swve_pool_utilization %.6g\n", s.pool_utilization());

  prom_header(out, "swve_trace_events_total",
              "Trace events recorded into the sink rings", "counter");
  appendf(out, "swve_trace_events_total %" PRIu64 "\n", s.trace_recorded);
  prom_header(out, "swve_trace_dropped_total",
              "Trace events lost, by cause", "counter");
  appendf(out, "swve_trace_dropped_total{cause=\"wrap\"} %" PRIu64 "\n",
          s.trace_dropped_wrap);
  appendf(out, "swve_trace_dropped_total{cause=\"torn\"} %" PRIu64 "\n",
          s.trace_dropped_torn);
  appendf(out, "swve_trace_dropped_total{cause=\"overflow\"} %" PRIu64 "\n",
          s.trace_dropped_overflow);

  prom_header(out, "swve_pmu_unavailable",
              "1 when hardware counters were requested but denied/absent "
              "(software-clock fallback active)",
              "gauge");
  appendf(out, "swve_pmu_unavailable %" PRIu64 "\n", s.pmu_unavailable);

  // One family per counter, ISA×kernel×width in labels; derived ratios
  // (IPC, backend-stall fraction, effective GHz) exported as gauges so
  // dashboards need no PromQL arithmetic.
  bool any_pmu = false;
  for (int i = 0; i < MetricsSnapshot::kIsas && !any_pmu; ++i)
    for (int k = 0; k < MetricsSnapshot::kKernelVariants && !any_pmu; ++k)
      for (int w = 0; w < MetricsSnapshot::kWidths; ++w)
        if (s.pmu[i][k][w].samples != 0) {
          any_pmu = true;
          break;
        }
  if (any_pmu) {
    struct Family {
      const char* name;
      const char* help;
      uint64_t perf::PmuSample::*field;
    };
    static constexpr Family kCounters[] = {
        {"swve_pmu_spans_total", "Kernel spans aggregated per cell",
         &perf::PmuSample::samples},
        {"swve_pmu_wall_ns_total", "Summed kernel-span wall time",
         &perf::PmuSample::wall_ns},
        {"swve_pmu_cycles_total", "CPU cycles in kernel spans",
         &perf::PmuSample::cycles},
        {"swve_pmu_instructions_total", "Instructions retired in kernel spans",
         &perf::PmuSample::instructions},
        {"swve_pmu_llc_misses_total", "Last-level-cache misses in kernel spans",
         &perf::PmuSample::llc_misses},
        {"swve_pmu_branch_misses_total", "Branch mispredicts in kernel spans",
         &perf::PmuSample::branch_misses},
    };
    const auto cell_labels = [&](char* buf, size_t cap, int i, int k, int w) {
      std::snprintf(buf, cap, "{isa=\"%s\",kernel=\"%s\",width=\"%u\"}",
                    simd::isa_name(static_cast<simd::Isa>(i)),
                    perf::kernel_variant_name(static_cast<KernelVariant>(k)),
                    MetricsSnapshot::width_bits_at(w));
    };
    char labels[96];
    for (const Family& f : kCounters) {
      prom_header(out, f.name, f.help, "counter");
      for (int i = 0; i < MetricsSnapshot::kIsas; ++i)
        for (int k = 0; k < MetricsSnapshot::kKernelVariants; ++k)
          for (int w = 0; w < MetricsSnapshot::kWidths; ++w) {
            const perf::PmuSample& c = s.pmu[i][k][w];
            if (c.samples == 0) continue;
            cell_labels(labels, sizeof labels, i, k, w);
            appendf(out, "%s%s %" PRIu64 "\n", f.name, labels, c.*(f.field));
          }
    }
    prom_header(out, "swve_pmu_stall_cycles_total",
                "Pipeline-stalled cycles in kernel spans, by stall side",
                "counter");
    for (int i = 0; i < MetricsSnapshot::kIsas; ++i)
      for (int k = 0; k < MetricsSnapshot::kKernelVariants; ++k)
        for (int w = 0; w < MetricsSnapshot::kWidths; ++w) {
          const perf::PmuSample& c = s.pmu[i][k][w];
          if (c.samples == 0) continue;
          appendf(out,
                  "swve_pmu_stall_cycles_total{isa=\"%s\",kernel=\"%s\","
                  "width=\"%u\",side=\"frontend\"} %" PRIu64 "\n",
                  simd::isa_name(static_cast<simd::Isa>(i)),
                  perf::kernel_variant_name(static_cast<KernelVariant>(k)),
                  MetricsSnapshot::width_bits_at(w), c.stall_frontend);
          appendf(out,
                  "swve_pmu_stall_cycles_total{isa=\"%s\",kernel=\"%s\","
                  "width=\"%u\",side=\"backend\"} %" PRIu64 "\n",
                  simd::isa_name(static_cast<simd::Isa>(i)),
                  perf::kernel_variant_name(static_cast<KernelVariant>(k)),
                  MetricsSnapshot::width_bits_at(w), c.stall_backend);
        }
    struct Derived {
      const char* name;
      const char* help;
      double (perf::PmuSample::*fn)() const noexcept;
    };
    static constexpr Derived kDerived[] = {
        {"swve_pmu_ipc", "Instructions per cycle", &perf::PmuSample::ipc},
        {"swve_pmu_backend_stall_fraction",
         "Backend-stalled fraction of cycles",
         &perf::PmuSample::backend_stall_fraction},
        {"swve_pmu_frontend_stall_fraction",
         "Frontend-stalled fraction of cycles",
         &perf::PmuSample::frontend_stall_fraction},
        {"swve_pmu_effective_ghz", "Cycles per wall nanosecond; a depressed "
                                   "AVX-512 value flags license throttling",
         &perf::PmuSample::effective_ghz},
    };
    for (const Derived& d : kDerived) {
      prom_header(out, d.name, d.help, "gauge");
      for (int i = 0; i < MetricsSnapshot::kIsas; ++i)
        for (int k = 0; k < MetricsSnapshot::kKernelVariants; ++k)
          for (int w = 0; w < MetricsSnapshot::kWidths; ++w) {
            const perf::PmuSample& c = s.pmu[i][k][w];
            if (c.samples == 0 || c.cycles == 0) continue;
            cell_labels(labels, sizeof labels, i, k, w);
            appendf(out, "%s%s %.6g\n", d.name, labels, (c.*(d.fn))());
          }
    }
    if (const double ratio = s.avx512_frequency_ratio(); ratio > 0) {
      prom_header(out, "swve_pmu_avx512_frequency_ratio",
                  "AVX-512 effective GHz over the fastest non-AVX-512 cell; "
                  "< 1 suggests license throttling",
                  "gauge");
      appendf(out, "swve_pmu_avx512_frequency_ratio %.6g\n", ratio);
    }
  }

  prom_header(out, "swve_slow_requests_total",
              "Requests the watchdog caught running past the latency SLO",
              "counter");
  appendf(out, "swve_slow_requests_total %" PRIu64 "\n", s.slow_requests);

  {
    const char* src = core::db_source_name(
        static_cast<core::DbSource>(s.db_source));
    prom_header(out, "swve_db_info",
                "Database provenance: constant 1 labeled by source "
                "(built = packed in-process, mmap = file-backed artifact, "
                "shm = shared-memory resident artifact)",
                "gauge");
    appendf(out, "swve_db_info{source=\"%s\"} 1\n",
            prom_escape_label(src).c_str());
    prom_header(out, "swve_db_map_bytes",
                "Mapped swve db artifact size; 0 for an in-process-built "
                "database",
                "gauge");
    appendf(out, "swve_db_map_bytes %" PRIu64 "\n", s.db_map_bytes);
    prom_header(out, "swve_db_resident_bytes",
                "Bytes of the artifact mapping currently resident in RAM",
                "gauge");
    appendf(out, "swve_db_resident_bytes %" PRIu64 "\n", s.db_resident_bytes);
    prom_header(out, "swve_db_load_seconds",
                "Database startup time: artifact open (or in-process pack) "
                "to search-ready",
                "gauge");
    appendf(out, "swve_db_load_seconds %.6g\n", s.db_load_seconds);
  }

  if (s.shard_count > 0) {
    prom_header(out, "swve_shard_info",
                "Sharded-search layout: constant 1 per shard, labeled by "
                "pinned NUMA node, thread count, and whether the shard's "
                "columns were mbind-placed",
                "gauge");
    for (uint32_t i = 0; i < s.shard_count; ++i)
      appendf(out,
              "swve_shard_info{shard=\"%u\",node=\"%d\",threads=\"%u\","
              "bound=\"%u\"} 1\n",
              i, s.shards[i].node, s.shards[i].threads, s.shards[i].bound);
    prom_header(out, "swve_shard_searches_total",
                "Batch searches executed, per shard", "counter");
    for (uint32_t i = 0; i < s.shard_count; ++i)
      appendf(out, "swve_shard_searches_total{shard=\"%u\"} %" PRIu64 "\n", i,
              s.shards[i].searches);
    prom_header(out, "swve_shard_cells_total",
                "DP cells computed per shard (8-bit kernel + rescore)",
                "counter");
    for (uint32_t i = 0; i < s.shard_count; ++i)
      appendf(out, "swve_shard_cells_total{shard=\"%u\"} %" PRIu64 "\n", i,
              s.shards[i].cells);
    prom_header(out, "swve_shard_busy_seconds_total",
                "Worker wall time spent inside each shard's scans",
                "counter");
    for (uint32_t i = 0; i < s.shard_count; ++i)
      appendf(out, "swve_shard_busy_seconds_total{shard=\"%u\"} %.6g\n", i,
              s.shards[i].busy_seconds);
    prom_header(out, "swve_shard_gcups",
                "Per-shard throughput over its own busy time — unequal "
                "values are the live shard-imbalance signal",
                "gauge");
    for (uint32_t i = 0; i < s.shard_count; ++i)
      appendf(out, "swve_shard_gcups{shard=\"%u\"} %.6g\n", i,
              s.shards[i].gcups());
    prom_header(out, "swve_shard_queue_depth",
                "Jobs outstanding on each shard's pinned pool", "gauge");
    for (uint32_t i = 0; i < s.shard_count; ++i)
      appendf(out, "swve_shard_queue_depth{shard=\"%u\"} %" PRIu64 "\n", i,
              s.shards[i].queue_depth);
    prom_header(out, "swve_shard_llc_misses_total",
                "Last-level-cache misses over shard scans (PMU deltas; 0 "
                "where perf_event is unavailable). Remote-heavy placement "
                "shows up as one shard's misses outgrowing its peers'",
                "counter");
    for (uint32_t i = 0; i < s.shard_count; ++i)
      appendf(out, "swve_shard_llc_misses_total{shard=\"%u\"} %" PRIu64 "\n",
              i, s.shards[i].llc_misses);
  }

  prom_header(out, "swve_result_cache_lookups_total",
              "Serialized-response cache lookups at the serving front door, "
              "by result",
              "counter");
  appendf(out, "swve_result_cache_lookups_total{result=\"hit\"} %" PRIu64 "\n",
          s.result_cache_hits);
  appendf(out, "swve_result_cache_lookups_total{result=\"miss\"} %" PRIu64 "\n",
          s.result_cache_misses);
  prom_header(out, "swve_result_cache_evictions_total",
              "Serialized-response LRU entries displaced at capacity",
              "counter");
  appendf(out, "swve_result_cache_evictions_total %" PRIu64 "\n",
          s.result_cache_evictions);
  prom_header(out, "swve_result_cache_entries",
              "Serialized-response LRU entries currently cached", "gauge");
  appendf(out, "swve_result_cache_entries %" PRIu64 "\n",
          s.result_cache_entries);
  prom_header(out, "swve_coalesced_requests_total",
              "Requests joined onto an identical in-flight execution "
              "(singleflight)",
              "counter");
  appendf(out, "swve_coalesced_requests_total %" PRIu64 "\n", s.coalesced);
  prom_header(out, "swve_dedup_ratio",
              "Fraction of served requests answered without a fresh "
              "execution (cache hit or coalesced)",
              "gauge");
  appendf(out, "swve_dedup_ratio %.6g\n", s.dedup_ratio());

  prom_header(out, "swve_server_connections_total",
              "TCP connections accepted by the serving front door", "counter");
  appendf(out, "swve_server_connections_total %" PRIu64 "\n",
          s.server_connections);
  prom_header(out, "swve_server_active_connections",
              "TCP connections currently open", "gauge");
  appendf(out, "swve_server_active_connections %" PRIu64 "\n",
          s.server_active_connections);
  prom_header(out, "swve_server_frames_total",
              "Protocol frames moved, by direction", "counter");
  appendf(out, "swve_server_frames_total{direction=\"rx\"} %" PRIu64 "\n",
          s.server_frames_rx);
  appendf(out, "swve_server_frames_total{direction=\"tx\"} %" PRIu64 "\n",
          s.server_frames_tx);
  prom_header(out, "swve_server_bytes_total",
              "Protocol payload bytes moved, by direction", "counter");
  appendf(out, "swve_server_bytes_total{direction=\"rx\"} %" PRIu64 "\n",
          s.server_bytes_rx);
  appendf(out, "swve_server_bytes_total{direction=\"tx\"} %" PRIu64 "\n",
          s.server_bytes_tx);
  prom_header(out, "swve_server_protocol_errors_total",
              "Frames rejected before reaching the service (bad magic, "
              "oversized, unknown type, undecodable payload)",
              "counter");
  appendf(out, "swve_server_protocol_errors_total %" PRIu64 "\n",
          s.server_protocol_errors);
  prom_header(out, "swve_server_http_scrapes_total",
              "HTTP GET /metrics requests answered", "counter");
  appendf(out, "swve_server_http_scrapes_total %" PRIu64 "\n",
          s.server_http_scrapes);

  static constexpr const char* kScenarioLabels[] = {"pairwise", "search",
                                                    "batch"};
  bool any_tier = false;
  for (int t = 0; t < MetricsSnapshot::kQosTiers && !any_tier; ++t)
    for (int sc = 0; sc < MetricsSnapshot::kScenarios; ++sc)
      if (s.tier_requests[t][sc] != 0) {
        any_tier = true;
        break;
      }
  if (any_tier) {
    prom_header(out, "swve_tier_requests_total",
                "Completed requests by QoS tier and scenario", "counter");
    for (int t = 0; t < MetricsSnapshot::kQosTiers; ++t)
      for (int sc = 0; sc < MetricsSnapshot::kScenarios; ++sc)
        if (s.tier_requests[t][sc] != 0)
          appendf(out,
                  "swve_tier_requests_total{tier=\"%s\",scenario=\"%s\"} "
                  "%" PRIu64 "\n",
                  perf::qos_tier_label(t), kScenarioLabels[sc],
                  s.tier_requests[t][sc]);
    prom_header(out, "swve_tier_latency_seconds",
                "End-to-end request latency (queue wait + execution) by "
                "QoS tier",
                "histogram");
    char labels[48];
    for (int t = 0; t < MetricsSnapshot::kQosTiers; ++t) {
      if (s.tier_latency[t].count == 0) continue;
      std::snprintf(labels, sizeof labels, "tier=\"%s\",",
                    perf::qos_tier_label(t));
      prom_histogram_series(out, "swve_tier_latency_seconds", labels,
                            s.tier_latency[t]);
    }
  }

  prom_header(out, "swve_log_records_total",
              "Structured log lines written to the sinks", "counter");
  appendf(out, "swve_log_records_total %" PRIu64 "\n", s.log_records);
  prom_header(out, "swve_log_dropped_total",
              "Structured log records lost, by cause", "counter");
  appendf(out, "swve_log_dropped_total{cause=\"overflow\"} %" PRIu64 "\n",
          s.log_dropped_overflow);
  appendf(out, "swve_log_dropped_total{cause=\"threads\"} %" PRIu64 "\n",
          s.log_dropped_threads);
  appendf(out, "swve_log_dropped_total{cause=\"rate_limited\"} %" PRIu64 "\n",
          s.log_suppressed);

  prom_header(out, "swve_uptime_seconds", "Service lifetime", "gauge");
  appendf(out, "swve_uptime_seconds %.6g\n", s.uptime_seconds);

  {
    bool any_len = false;
    for (int bn = 0; bn < MetricsSnapshot::kLengthBins && !any_len; ++bn)
      any_len = s.query_length_bins[bn] != 0;
    if (any_len) {
      prom_header(out, "swve_query_length_requests_total",
                  "Submitted queries by power-of-two length bin "
                  "(min_residues = inclusive lower bound)",
                  "counter");
      for (int bn = 0; bn < MetricsSnapshot::kLengthBins; ++bn)
        if (s.query_length_bins[bn] != 0)
          appendf(out,
                  "swve_query_length_requests_total{min_residues=\"%" PRIu64
                  "\"} %" PRIu64 "\n",
                  MetricsSnapshot::length_bin_lower(bn),
                  s.query_length_bins[bn]);
    }
  }

  if (slo != nullptr) {
    prom_header(out, "swve_slo_state",
                "Burn-rate alert state after hysteresis "
                "(0=ok, 1=warning, 2=firing)",
                "gauge");
    appendf(out, "swve_slo_state %d\n", static_cast<int>(slo->state));
    prom_header(out, "swve_slo_burn_rate",
                "Error-budget burn rate by objective and window; both "
                "windows of an objective past the threshold raise the alert",
                "gauge");
    appendf(out,
            "swve_slo_burn_rate{objective=\"latency\",window=\"fast\"} %.6g\n",
            slo->latency_fast_burn);
    appendf(out,
            "swve_slo_burn_rate{objective=\"latency\",window=\"slow\"} %.6g\n",
            slo->latency_slow_burn);
    appendf(out,
            "swve_slo_burn_rate{objective=\"availability\",window=\"fast\"} "
            "%.6g\n",
            slo->availability_fast_burn);
    appendf(out,
            "swve_slo_burn_rate{objective=\"availability\",window=\"slow\"} "
            "%.6g\n",
            slo->availability_slow_burn);
    prom_header(out, "swve_slo_transitions_total",
                "Alert-state changes over the service lifetime", "counter");
    appendf(out, "swve_slo_transitions_total %" PRIu64 "\n",
            slo->transitions);
  }

  prom_histogram(out, "swve_queue_wait_seconds",
                 "Submit-to-execution-start wait", s.queue_wait);
  prom_histogram(out, "swve_kernel_time_seconds",
                 "Per-request execution time", s.kernel_time);
  return out;
}

namespace {

void json_histogram(std::string& out, const char* key,
                    const LatencyHistogram::Snapshot& h) {
  appendf(out,
          "\"%s\":{\"count\":%" PRIu64
          ",\"mean_s\":%.9g,\"max_s\":%.9g,\"p50_s\":%.9g,\"p90_s\":%.9g,"
          "\"p99_s\":%.9g,\"buckets\":[",
          key, h.count, h.mean_s, h.max_s, h.p50_s, h.p90_s, h.p99_s);
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i)
    appendf(out, "%s%" PRIu64, i ? "," : "", h.buckets[i]);
  out += "]}";
}

}  // namespace

std::string to_json(const MetricsSnapshot& s, const SloStatus* slo) {
  std::string out;
  out.reserve(2048);
  out += "{";
  const BuildInfo b = build_info();
  appendf(out,
          "\"build\":{\"version\":\"%s\",\"compiler\":\"%s\","
          "\"isas\":\"%s\"},",
          json_escape(b.version).c_str(), json_escape(b.compiler).c_str(),
          json_escape(b.isas).c_str());
  appendf(out,
          "\"requests\":{\"submitted\":%" PRIu64 ",\"completed\":%" PRIu64
          ",\"rejected_queue_full\":%" PRIu64 ",\"deadline_expired\":%" PRIu64
          ",\"invalid_request\":%" PRIu64 ",\"aborted\":%" PRIu64 "},",
          s.submitted, s.completed, s.rejected_queue_full, s.deadline_expired,
          s.invalid_request, s.aborted);
  appendf(out,
          "\"scenarios\":{\"pairwise\":%" PRIu64 ",\"search\":%" PRIu64
          ",\"batch\":%" PRIu64 "},",
          s.pairwise, s.search, s.batch);
  appendf(out,
          "\"kernel\":{\"cells\":%" PRIu64
          ",\"seconds\":%.9g,\"aggregate_gcups\":%.6g},",
          s.cells, s.kernel_seconds, s.aggregate_gcups());
  appendf(out,
          "\"window\":{\"span_s\":%d,\"cells\":%" PRIu64
          ",\"kernel_seconds\":%.9g,\"gcups\":%.6g},",
          MetricsSnapshot::kWindowSeconds, s.window_cells,
          s.window_kernel_seconds, s.window_gcups());
  out += "\"targets\":[";
  bool first = true;
  for (int i = 0; i < MetricsSnapshot::kIsas; ++i) {
    for (int k = 0; k < MetricsSnapshot::kKernelVariants; ++k) {
      if (s.target_requests[i][k] == 0 && s.target_cells[i][k] == 0) continue;
      appendf(out,
              "%s{\"isa\":\"%s\",\"kernel\":\"%s\",\"requests\":%" PRIu64
              ",\"cells\":%" PRIu64 "}",
              first ? "" : ",", simd::isa_name(static_cast<simd::Isa>(i)),
              perf::kernel_variant_name(static_cast<KernelVariant>(k)),
              s.target_requests[i][k], s.target_cells[i][k]);
      first = false;
    }
  }
  out += "],";
  appendf(out,
          "\"batch_packing\":{\"cells8\":%" PRIu64 ",\"useful_cells8\":%" PRIu64
          ",\"efficiency\":%.6g},",
          s.batch_cells8, s.batch_useful_cells8, s.batch_packing_efficiency());
  appendf(out,
          "\"query_cache\":{\"hits\":%" PRIu64 ",\"misses\":%" PRIu64
          ",\"hit_rate\":%.6g,\"evictions\":%" PRIu64 ",\"entries\":%" PRIu64
          ",\"ws_reuses\":%" PRIu64 ",\"ws_creates\":%" PRIu64 "},",
          s.query_cache_hits, s.query_cache_misses, s.query_cache_hit_rate(),
          s.query_cache_evictions, s.query_cache_entries, s.workspace_reuses,
          s.workspace_creates);
  appendf(out,
          "\"pool\":{\"threads\":%u,\"jobs\":%" PRIu64
          ",\"busy_seconds\":%.9g,\"utilization\":%.6g},",
          s.pool_threads, s.pool_jobs, s.pool_busy_seconds,
          s.pool_utilization());
  appendf(out,
          "\"trace\":{\"recorded\":%" PRIu64 ",\"dropped_wrap\":%" PRIu64
          ",\"dropped_torn\":%" PRIu64 ",\"dropped_overflow\":%" PRIu64 "},",
          s.trace_recorded, s.trace_dropped_wrap, s.trace_dropped_torn,
          s.trace_dropped_overflow);
  appendf(out, "\"pmu\":{\"unavailable\":%" PRIu64 ",\"cells\":[",
          s.pmu_unavailable);
  {
    bool first_cell = true;
    for (int i = 0; i < MetricsSnapshot::kIsas; ++i)
      for (int k = 0; k < MetricsSnapshot::kKernelVariants; ++k)
        for (int w = 0; w < MetricsSnapshot::kWidths; ++w) {
          const perf::PmuSample& c = s.pmu[i][k][w];
          if (c.samples == 0) continue;
          appendf(out,
                  "%s{\"isa\":\"%s\",\"kernel\":\"%s\",\"width\":%u,"
                  "\"spans\":%" PRIu64 ",\"wall_ns\":%" PRIu64
                  ",\"cycles\":%" PRIu64 ",\"instructions\":%" PRIu64
                  ",\"stall_frontend\":%" PRIu64 ",\"stall_backend\":%" PRIu64
                  ",\"llc_misses\":%" PRIu64 ",\"branch_misses\":%" PRIu64
                  ",\"ipc\":%.6g,\"backend_stall_fraction\":%.6g,"
                  "\"effective_ghz\":%.6g}",
                  first_cell ? "" : ",",
                  simd::isa_name(static_cast<simd::Isa>(i)),
                  perf::kernel_variant_name(static_cast<KernelVariant>(k)),
                  MetricsSnapshot::width_bits_at(w), c.samples, c.wall_ns,
                  c.cycles, c.instructions, c.stall_frontend, c.stall_backend,
                  c.llc_misses, c.branch_misses, c.ipc(),
                  c.backend_stall_fraction(), c.effective_ghz());
          first_cell = false;
        }
  }
  appendf(out, "],\"avx512_frequency_ratio\":%.6g},",
          s.avx512_frequency_ratio());
  appendf(out, "\"slow_requests\":%" PRIu64 ",", s.slow_requests);
  appendf(out,
          "\"db\":{\"source\":\"%s\",\"map_bytes\":%" PRIu64
          ",\"resident_bytes\":%" PRIu64 ",\"load_seconds\":%.6g"
          ",\"epoch\":\"%" PRIu64 "\"},",
          core::db_source_name(static_cast<core::DbSource>(s.db_source)),
          s.db_map_bytes, s.db_resident_bytes, s.db_load_seconds, s.db_epoch);
  out += "\"shards\":[";
  for (uint32_t i = 0; i < s.shard_count; ++i) {
    const auto& sh = s.shards[i];
    appendf(out,
            "%s{\"shard\":%u,\"node\":%d,\"threads\":%u,\"bound\":%s,"
            "\"sequences\":%" PRIu64 ",\"searches\":%" PRIu64
            ",\"batches\":%" PRIu64 ",\"cells\":%" PRIu64
            ",\"useful_cells\":%" PRIu64 ",\"busy_seconds\":%.6g,"
            "\"gcups\":%.6g,\"queue_depth\":%" PRIu64
            ",\"llc_misses\":%" PRIu64 ",\"cycles\":%" PRIu64 "}",
            i ? "," : "", i, sh.node, sh.threads, sh.bound ? "true" : "false",
            sh.sequences, sh.searches, sh.batches, sh.cells, sh.useful_cells,
            sh.busy_seconds, sh.gcups(), sh.queue_depth, sh.llc_misses,
            sh.cycles);
  }
  out += "],";
  appendf(out,
          "\"result_cache\":{\"hits\":%" PRIu64 ",\"misses\":%" PRIu64
          ",\"hit_rate\":%.6g,\"evictions\":%" PRIu64 ",\"entries\":%" PRIu64
          ",\"coalesced\":%" PRIu64 ",\"dedup_ratio\":%.6g},",
          s.result_cache_hits, s.result_cache_misses,
          s.result_cache_hit_rate(), s.result_cache_evictions,
          s.result_cache_entries, s.coalesced, s.dedup_ratio());
  appendf(out,
          "\"server\":{\"connections\":%" PRIu64
          ",\"active_connections\":%" PRIu64 ",\"frames_rx\":%" PRIu64
          ",\"frames_tx\":%" PRIu64 ",\"bytes_rx\":%" PRIu64
          ",\"bytes_tx\":%" PRIu64 ",\"protocol_errors\":%" PRIu64
          ",\"http_scrapes\":%" PRIu64 "},",
          s.server_connections, s.server_active_connections,
          s.server_frames_rx, s.server_frames_tx, s.server_bytes_rx,
          s.server_bytes_tx, s.server_protocol_errors, s.server_http_scrapes);
  out += "\"tiers\":{";
  for (int t = 0; t < MetricsSnapshot::kQosTiers; ++t) {
    uint64_t total = 0;
    for (int sc = 0; sc < MetricsSnapshot::kScenarios; ++sc)
      total += s.tier_requests[t][sc];
    appendf(out,
            "%s\"%s\":{\"requests\":%" PRIu64 ",\"pairwise\":%" PRIu64
            ",\"search\":%" PRIu64 ",\"batch\":%" PRIu64
            ",\"p50_s\":%.9g,\"p99_s\":%.9g}",
            t ? "," : "", perf::qos_tier_label(t), total,
            s.tier_requests[t][0], s.tier_requests[t][1], s.tier_requests[t][2],
            s.tier_latency[t].p50_s, s.tier_latency[t].p99_s);
  }
  out += "},";
  appendf(out,
          "\"log\":{\"records\":%" PRIu64 ",\"dropped_overflow\":%" PRIu64
          ",\"dropped_threads\":%" PRIu64 ",\"suppressed\":%" PRIu64 "},",
          s.log_records, s.log_dropped_overflow, s.log_dropped_threads,
          s.log_suppressed);
  out += "\"query_length_bins\":[";
  for (int bn = 0; bn < MetricsSnapshot::kLengthBins; ++bn)
    appendf(out, "%s%" PRIu64, bn ? "," : "", s.query_length_bins[bn]);
  out += "],";
  if (slo != nullptr)
    appendf(out,
            "\"slo\":{\"state\":\"%s\",\"instant\":\"%s\","
            "\"latency_fast_burn\":%.6g,\"latency_slow_burn\":%.6g,"
            "\"availability_fast_burn\":%.6g,"
            "\"availability_slow_burn\":%.6g,\"evaluations\":%" PRIu64
            ",\"transitions\":%" PRIu64 "},",
            alert_state_name(slo->state), alert_state_name(slo->instant),
            slo->latency_fast_burn, slo->latency_slow_burn,
            slo->availability_fast_burn, slo->availability_slow_burn,
            slo->evaluations, slo->transitions);
  appendf(out, "\"uptime_seconds\":%.6g,", s.uptime_seconds);
  json_histogram(out, "queue_wait", s.queue_wait);
  out += ",";
  json_histogram(out, "kernel_time", s.kernel_time);
  out += "}\n";
  return out;
}

}  // namespace swve::obs
