// In-flight request table: one atomic slot per executor thread, recording
// which request that executor is running right now and since when.
//
// Two consumers, both of which forbid locks:
//   * the watchdog thread (obs/watchdog.hpp) scans it every period looking
//     for requests running past their latency SLO;
//   * the flight recorder (obs/flight_recorder.hpp) snapshots it from a
//     fatal-signal handler — the "what was the service doing when it died"
//     table of the crash dump.
//
// Every field is a relaxed atomic; a slot is occupied while `id != 0`. A
// reader can observe a torn entry only across a request boundary (id from
// the new request with start_ns from the old); the id-recheck in
// snapshot() drops entries that were released mid-read, which is the worst
// staleness a diagnostic table needs to care about.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>

#include "obs/pmu.hpp"

namespace swve::obs {

/// Request scenario codes for the table (keep in sync with the service's
/// submit paths).
enum class Scenario : uint32_t { Pairwise = 0, Search = 1, Batch = 2 };
inline const char* scenario_label(uint32_t s) noexcept {
  switch (static_cast<Scenario>(s)) {
    case Scenario::Pairwise: return "pairwise";
    case Scenario::Search: return "search";
    case Scenario::Batch: return "batch";
  }
  return "?";
}

class InFlightTable {
 public:
  /// A snapshot row (plain values, safe to format from a signal handler).
  struct Entry {
    uint32_t slot = 0;         ///< executor index
    uint64_t id = 0;           ///< request trace id
    uint32_t scenario = 0;     ///< Scenario code
    uint64_t start_ns = 0;     ///< steady_now_ns() at execution start
    uint64_t deadline_ns = 0;  ///< absolute deadline on the same clock, 0=none
  };

  explicit InFlightTable(unsigned slots)
      : slots_(std::max(1u, slots)), table_(new Slot[slots_]) {}
  InFlightTable(const InFlightTable&) = delete;
  InFlightTable& operator=(const InFlightTable&) = delete;

  unsigned slots() const noexcept { return slots_; }

  /// RAII occupancy of one executor slot for one request.
  class Guard {
   public:
    Guard() = default;
    Guard(InFlightTable& table, unsigned slot, uint64_t id, Scenario scenario,
          uint64_t deadline_ns) noexcept
        : table_(&table), slot_(slot % table.slots_) {
      table_->begin(slot_, id, scenario, deadline_ns);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() {
      if (table_ != nullptr) table_->end(slot_);
    }

   private:
    InFlightTable* table_ = nullptr;
    unsigned slot_ = 0;
  };

  /// Copy occupied slots into `out` (signal-safe, no allocation). Returns
  /// rows written.
  size_t snapshot(Entry* out, size_t max) const noexcept {
    size_t n = 0;
    for (unsigned i = 0; i < slots_ && n < max; ++i) {
      const Slot& s = table_[i];
      const uint64_t id = s.id.load(std::memory_order_acquire);
      if (id == 0) continue;
      Entry e;
      e.slot = i;
      e.id = id;
      e.scenario = s.scenario.load(std::memory_order_relaxed);
      e.start_ns = s.start_ns.load(std::memory_order_relaxed);
      e.deadline_ns = s.deadline_ns.load(std::memory_order_relaxed);
      if (s.id.load(std::memory_order_acquire) != id) continue;  // released
      out[n++] = e;
    }
    return n;
  }

  /// Occupied-slot count (approximate under concurrency).
  size_t active() const noexcept {
    size_t n = 0;
    for (unsigned i = 0; i < slots_; ++i)
      if (table_[i].id.load(std::memory_order_relaxed) != 0) ++n;
    return n;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> id{0};
    std::atomic<uint32_t> scenario{0};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> deadline_ns{0};
  };

  void begin(unsigned slot, uint64_t id, Scenario scenario,
             uint64_t deadline_ns) noexcept {
    Slot& s = table_[slot];
    s.scenario.store(static_cast<uint32_t>(scenario),
                     std::memory_order_relaxed);
    s.start_ns.store(steady_now_ns(), std::memory_order_relaxed);
    s.deadline_ns.store(deadline_ns, std::memory_order_relaxed);
    s.id.store(id != 0 ? id : 1, std::memory_order_release);
  }
  void end(unsigned slot) noexcept {
    table_[slot].id.store(0, std::memory_order_release);
  }

  unsigned slots_;
  std::unique_ptr<Slot[]> table_;
};

}  // namespace swve::obs
