#include "obs/log.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <time.h>
#include <unistd.h>
#endif

namespace swve::obs {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

std::atomic<uint64_t> g_logger_ids{0};
std::atomic<Logger*> g_logger{nullptr};

uint64_t wall_now_us() noexcept {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

bool write_all(int fd, const char* p, size_t n) noexcept {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

/// Append `v` JSON-escaped (quotes, backslashes, control bytes).
void append_escaped(std::string& out, const char* v) {
  for (const char* p = v; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof esc, "\\u%04x", c);
          out += esc;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

void append_record(std::string& out, const LogRecord& rec) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "{\"ts_us\":%" PRIu64 ",\"level\":\"%s\"",
                rec.ts_us, log_level_name(rec.level));
  out += buf;
  out += ",\"event\":\"";
  append_escaped(out, rec.event);
  out += '"';
  const uint8_t n = std::min<uint8_t>(rec.nfields, kMaxLogFields);
  for (uint8_t i = 0; i < n; ++i) {
    const LogField& f = rec.fields[i];
    out += ",\"";
    append_escaped(out, f.key);
    out += "\":";
    switch (f.value.kind) {
      case LogValue::Kind::I64:
        std::snprintf(buf, sizeof buf, "%" PRId64, f.value.i);
        out += buf;
        break;
      case LogValue::Kind::U64:
        std::snprintf(buf, sizeof buf, "%" PRIu64, f.value.u);
        out += buf;
        break;
      case LogValue::Kind::F64:
        std::snprintf(buf, sizeof buf, "%.6g", f.value.f);
        out += buf;
        break;
      case LogValue::Kind::Bool:
        out += f.value.b ? "true" : "false";
        break;
      case LogValue::Kind::Str:
        out += '"';
        append_escaped(out, f.value.s);
        out += '"';
        break;
    }
  }
  out += "}\n";
}

}  // namespace

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
  }
  return "?";
}

LogLevel log_level_from_string(std::string_view s) noexcept {
  if (s == "debug") return LogLevel::Debug;
  if (s == "warn" || s == "warning") return LogLevel::Warn;
  if (s == "error") return LogLevel::Error;
  return LogLevel::Info;
}

Logger::Logger(const LoggerOptions& options)
    : opts_(options),
      capacity_(std::bit_ceil(std::max<size_t>(options.ring_capacity, 2))),
      max_threads_(std::max(1u, options.max_threads)),
      rings_(new Ring[max_threads_]),
      sites_(new Site[kSites]),
      logger_id_(g_logger_ids.fetch_add(1, kRelaxed) + 1) {
  for (unsigned r = 0; r < max_threads_; ++r)
    rings_[r].slots.reset(new LogRecord[capacity_]);
#if defined(__unix__) || defined(__APPLE__)
  if (!opts_.path.empty())
    file_fd_ = ::open(opts_.path.c_str(),
                      O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
#endif
  flusher_ = std::thread([this] { flusher_loop(); });
}

Logger::~Logger() {
  Logger* self = this;
  g_logger.compare_exchange_strong(self, nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  // Catch records enqueued after the flusher's final pass. The lifetime
  // contract (destroy after producing threads) makes this the last word.
  std::string buf;
  drain_once(buf);
#if defined(__unix__) || defined(__APPLE__)
  if (file_fd_ >= 0) ::close(file_fd_);
#endif
}

void Logger::install_global(Logger* logger) noexcept {
  g_logger.store(logger, std::memory_order_release);
}

Logger* Logger::global() noexcept {
  return g_logger.load(std::memory_order_acquire);
}

int Logger::ring_index() noexcept {
  struct Cache {
    uint64_t logger_id = 0;
    int idx = -1;
  };
  thread_local Cache cache;
  if (cache.logger_id == logger_id_) return cache.idx;
  const unsigned i = registered_.fetch_add(1, kRelaxed);
  cache.logger_id = logger_id_;
  cache.idx = i < max_threads_ ? static_cast<int>(i) : -1;
  return cache.idx;
}

bool Logger::over_rate_limit(const char* event) noexcept {
  if (opts_.rate_limit_per_sec == 0) return false;
  const uint64_t now_s = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  // Open addressing on the event pointer. A full table admits the record
  // (limiting is best-effort, losing visibility would be worse).
  uint64_t h = reinterpret_cast<uintptr_t>(event);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  for (size_t probe = 0; probe < 8; ++probe) {
    Site& site = sites_[(h + probe) % kSites];
    const char* cur = site.event.load(kRelaxed);
    if (cur == nullptr) {
      const char* expected = nullptr;
      if (!site.event.compare_exchange_strong(expected, event, kRelaxed))
        cur = expected;
      else
        cur = event;
    }
    if (cur != event) continue;
    if (site.window_s.load(kRelaxed) != now_s) {
      // Benign race: two threads may both reset; the count is approximate.
      site.window_s.store(now_s, kRelaxed);
      site.count.store(0, kRelaxed);
    }
    return site.count.fetch_add(1, kRelaxed) >= opts_.rate_limit_per_sec;
  }
  return false;
}

void Logger::log(LogLevel level, const char* event,
                 std::initializer_list<LogField> fields) noexcept {
  if (level < opts_.min_level) return;
  if (over_rate_limit(event)) {
    suppressed_.fetch_add(1, kRelaxed);
    return;
  }
  const int r = ring_index();
  if (r < 0) {
    dropped_threads_.fetch_add(1, kRelaxed);
    return;
  }
  Ring& ring = rings_[r];
  const uint64_t h = ring.head.load(kRelaxed);  // producer-owned
  if (h - ring.tail.load(std::memory_order_acquire) >= capacity_) {
    dropped_overflow_.fetch_add(1, kRelaxed);
    return;
  }
  LogRecord& rec = ring.slots[h & (capacity_ - 1)];
  rec.ts_us = wall_now_us();
  rec.level = level;
  rec.event = event;
  rec.nfields = 0;
  for (const LogField& f : fields) {
    if (rec.nfields >= kMaxLogFields) break;
    rec.fields[rec.nfields++] = f;
  }
  ring.head.store(h + 1, std::memory_order_release);
}

void Logger::drain_once(std::string& buf) {
  std::vector<LogRecord> batch;
  const unsigned live = std::min(registered_.load(kRelaxed), max_threads_);
  for (unsigned r = 0; r < live; ++r) {
    Ring& ring = rings_[r];
    const uint64_t h = ring.head.load(std::memory_order_acquire);
    const uint64_t t = ring.tail.load(kRelaxed);  // flusher-owned
    for (uint64_t i = t; i < h; ++i)
      batch.push_back(ring.slots[i & (capacity_ - 1)]);
    ring.tail.store(h, std::memory_order_release);
  }
  if (batch.empty()) return;
  std::sort(batch.begin(), batch.end(),
            [](const LogRecord& a, const LogRecord& b) {
              return a.ts_us < b.ts_us;
            });
  buf.clear();
  for (const LogRecord& rec : batch) append_record(buf, rec);
  emitted_.fetch_add(batch.size(), kRelaxed);
#if defined(__unix__) || defined(__APPLE__)
  if (opts_.fd >= 0) write_all(opts_.fd, buf.data(), buf.size());
  if (file_fd_ >= 0) write_all(file_fd_, buf.data(), buf.size());
#endif
}

void Logger::flusher_loop() {
  std::string buf;
  const auto period = std::chrono::duration<double>(
      opts_.flush_period_s > 0 ? opts_.flush_period_s : 0.05);
  while (true) {
    bool stopping = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, period, [&] { return stop_; });
      stopping = stop_;
    }
    drain_once(buf);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++flush_seq_;
    }
    cv_.notify_all();
    if (stopping) return;
  }
}

void Logger::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  // Two completed passes guarantee one full drain that began after this
  // call (the current pass may already have read our ring).
  const uint64_t target = flush_seq_ + 2;
  cv_.notify_all();
  cv_.wait(lock, [&] { return flush_seq_ >= target || stop_; });
}

void Logger::write_fatal_line(const char* event, const char* reason) noexcept {
#if defined(__unix__) || defined(__APPLE__)
  // Async-signal-safe by the same argument as the flight recorder's
  // emitf: snprintf formats on the stack, write(2) is on the safe list.
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  const uint64_t us = static_cast<uint64_t>(ts.tv_sec) * 1000000ull +
                      static_cast<uint64_t>(ts.tv_nsec) / 1000ull;
  char buf[512];
  const int n = std::snprintf(
      buf, sizeof buf,
      "{\"ts_us\":%" PRIu64 ",\"level\":\"error\",\"event\":\"%s\","
      "\"reason\":\"%s\"}\n",
      us, event != nullptr ? event : "fatal",
      reason != nullptr ? reason : "");
  if (n <= 0) return;
  const size_t len = std::min(static_cast<size_t>(n), sizeof buf - 1);
  if (opts_.fd >= 0) write_all(opts_.fd, buf, len);
  if (file_fd_ >= 0) write_all(file_fd_, buf, len);
#else
  (void)event;
  (void)reason;
#endif
}

uint64_t Logger::emitted() const noexcept { return emitted_.load(kRelaxed); }
uint64_t Logger::dropped_overflow() const noexcept {
  return dropped_overflow_.load(kRelaxed);
}
uint64_t Logger::dropped_threads() const noexcept {
  return dropped_threads_.load(kRelaxed);
}
uint64_t Logger::suppressed() const noexcept {
  return suppressed_.load(kRelaxed);
}

void log_debug(const char* event,
               std::initializer_list<LogField> fields) noexcept {
  Logger* logger = Logger::global();
  if (logger != nullptr) logger->log(LogLevel::Debug, event, fields);
}

void log_info(const char* event,
              std::initializer_list<LogField> fields) noexcept {
  Logger* logger = Logger::global();
  if (logger != nullptr) logger->log(LogLevel::Info, event, fields);
}

void log_warn(const char* event,
              std::initializer_list<LogField> fields) noexcept {
  Logger* logger = Logger::global();
  if (logger != nullptr) logger->log(LogLevel::Warn, event, fields);
}

void log_error(const char* event,
               std::initializer_list<LogField> fields) noexcept {
  Logger* logger = Logger::global();
  if (logger != nullptr) logger->log(LogLevel::Error, event, fields);
}

}  // namespace swve::obs
