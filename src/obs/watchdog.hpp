// Latency-SLO watchdog: a background thread that scans the in-flight
// request table and emits a structured slow-request record for any request
// that has been executing longer than the SLO — the "why is this request
// stuck" black box, captured while the request is still running rather
// than reconstructed after it (maybe never) finishes.
//
// A record carries everything a post-mortem needs: the request id and
// scenario, how long it has been running against which SLO, the queue
// state at detection time, and the request's span tree pulled from the
// TraceSink (the spans recorded so far under that trace id). Records are
// deduplicated per occupancy — one record per slow request, not one per
// scan tick — and kept in a bounded ring exposed as JSON.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/inflight.hpp"
#include "obs/trace.hpp"

namespace swve::perf {
class MetricsRegistry;
}

namespace swve::obs {

/// One detected SLO breach.
struct SlowRequestRecord {
  uint64_t trace_id = 0;
  uint32_t scenario = 0;       ///< Scenario code (scenario_label())
  uint32_t slot = 0;           ///< executor stuck on the request
  double running_s = 0;        ///< execution time at detection
  double slo_s = 0;            ///< the breached threshold
  bool past_deadline = false;  ///< also past its own request deadline
  size_t queue_depth = 0;      ///< service queue depth at detection
  std::string spans_json;      ///< span tree so far, JSON array

  std::string to_json() const;
};

struct WatchdogOptions {
  double slo_s = 1.0;      ///< execution-time SLO
  double period_s = 0.05;  ///< scan period
  size_t capacity = 64;    ///< slow-request records retained
};

/// Owns the scan thread; construction starts it, destruction joins it.
class Watchdog {
 public:
  /// `table` must outlive the watchdog. `sink`/`registry` may be null
  /// (records then carry no span tree / no slow_requests counter).
  /// `queue_depth` is sampled at detection time (may be empty).
  Watchdog(const InFlightTable& table, WatchdogOptions options,
           TraceSink* sink, perf::MetricsRegistry* registry,
           std::function<size_t()> queue_depth);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Total SLO breaches detected since construction.
  uint64_t detected() const noexcept;
  /// Copy of the retained records (oldest first).
  std::vector<SlowRequestRecord> records() const;
  /// Records as a JSON array.
  std::string json() const;

  /// Run one scan now (tests; also called by the scan thread).
  void scan_once();

 private:
  void loop();

  const InFlightTable& table_;
  const WatchdogOptions options_;
  TraceSink* sink_;
  perf::MetricsRegistry* registry_;
  std::function<size_t()> queue_depth_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::vector<SlowRequestRecord> records_;  // bounded ring, oldest first
  std::vector<uint64_t> reported_;          // per-slot id of last report
  uint64_t detected_ = 0;
  std::thread thread_;
};

}  // namespace swve::obs
