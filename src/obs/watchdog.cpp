#include "obs/watchdog.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "obs/log.hpp"
#include "perf/metrics.hpp"

namespace swve::obs {

namespace {

/// JSON array of the spans recorded so far under `trace_id` (name, ts, dur,
/// and — when present — the PMU delta). Bounded: the watchdog runs while
/// the service is live, so keep records small.
std::string spans_json_for(TraceSink* sink, uint64_t trace_id) {
  if (sink == nullptr) return "[]";
  std::string out = "[";
  char buf[256];
  bool first = true;
  size_t kept = 0;
  constexpr size_t kMaxSpans = 64;
  for (const TraceEvent& e : sink->snapshot_events()) {
    if (e.trace_id != trace_id) continue;
    if (++kept > kMaxSpans) break;
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\":\"%s\",\"ts_ns\":%" PRIu64
                  ",\"dur_ns\":%" PRIu64,
                  first ? "" : ",", e.name, e.ts_ns, e.dur_ns);
    out += buf;
    first = false;
    if (e.cycles != 0) {
      std::snprintf(buf, sizeof buf,
                    ",\"cycles\":%" PRIu64 ",\"instructions\":%" PRIu64
                    ",\"ipc\":%.3f,\"eff_ghz\":%.3f",
                    e.cycles, e.instructions, e.ipc(), e.effective_ghz());
      out += buf;
    }
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace

std::string SlowRequestRecord::to_json() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"trace_id\":%" PRIu64
                ",\"scenario\":\"%s\",\"slot\":%u,\"running_s\":%.3f,"
                "\"slo_s\":%.3f,\"past_deadline\":%s,\"queue_depth\":%zu,"
                "\"spans\":",
                trace_id, scenario_label(scenario), slot, running_s, slo_s,
                past_deadline ? "true" : "false", queue_depth);
  std::string out = buf;
  out += spans_json.empty() ? "[]" : spans_json;
  out += "}";
  return out;
}

Watchdog::Watchdog(const InFlightTable& table, WatchdogOptions options,
                   TraceSink* sink, perf::MetricsRegistry* registry,
                   std::function<size_t()> queue_depth)
    : table_(table),
      options_(options),
      sink_(sink),
      registry_(registry),
      queue_depth_(std::move(queue_depth)),
      reported_(table.slots(), 0) {
  thread_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::loop() {
  const auto period = std::chrono::duration<double>(
      options_.period_s > 0 ? options_.period_s : 0.05);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, period, [this] { return stop_; })) return;
    lock.unlock();
    scan_once();
    lock.lock();
  }
}

void Watchdog::scan_once() {
  constexpr size_t kMaxSlots = 256;
  InFlightTable::Entry entries[kMaxSlots];
  const size_t n = table_.snapshot(
      entries, std::min<size_t>(kMaxSlots, table_.slots()));
  const uint64_t now = steady_now_ns();
  const uint64_t slo_ns =
      static_cast<uint64_t>(options_.slo_s * 1e9);
  for (size_t i = 0; i < n; ++i) {
    const InFlightTable::Entry& e = entries[i];
    if (e.start_ns == 0 || now <= e.start_ns) continue;
    const uint64_t running = now - e.start_ns;
    if (running < slo_ns) continue;

    {
      // One record per occupancy: a request breaching the SLO stays
      // breaching on every later scan until its slot is released.
      std::lock_guard<std::mutex> lock(mu_);
      if (e.slot < reported_.size() && reported_[e.slot] == e.id) continue;
      if (e.slot < reported_.size()) reported_[e.slot] = e.id;
      ++detected_;
    }

    SlowRequestRecord rec;
    rec.trace_id = e.id;
    rec.scenario = e.scenario;
    rec.slot = e.slot;
    rec.running_s = static_cast<double>(running) * 1e-9;
    rec.slo_s = options_.slo_s;
    rec.past_deadline = e.deadline_ns != 0 && now > e.deadline_ns;
    rec.queue_depth = queue_depth_ ? queue_depth_() : 0;
    rec.spans_json = spans_json_for(sink_, e.id);

    if (registry_ != nullptr) registry_->on_slow_request();
    log_warn("watchdog.slow_request", {{"trace_id", rec.trace_id},
                                       {"running_s", rec.running_s},
                                       {"slo_s", rec.slo_s},
                                       {"past_deadline", rec.past_deadline},
                                       {"queue_depth", rec.queue_depth}});

    std::lock_guard<std::mutex> lock(mu_);
    if (records_.size() >= options_.capacity)
      records_.erase(records_.begin());
    records_.push_back(std::move(rec));
  }
}

uint64_t Watchdog::detected() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return detected_;
}

std::vector<SlowRequestRecord> Watchdog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::string Watchdog::json() const {
  const std::vector<SlowRequestRecord> recs = records();
  std::string out = "[";
  for (size_t i = 0; i < recs.size(); ++i) {
    if (i > 0) out += ",";
    out += recs[i].to_json();
  }
  out += "]";
  return out;
}

}  // namespace swve::obs
