// Machine-readable renderings of perf::MetricsSnapshot.
//
// The human text dump (MetricsSnapshot::to_string) is for eyeballs; these
// exporters are for scrapers: Prometheus text exposition format 0.0.4
// (`name{labels} value` lines with HELP/TYPE headers, cumulative `le`
// histogram buckets) and a JSON object that round-trips every counter.
// The metric schema is documented in docs/observability.md.
#pragma once

#include <optional>
#include <string>

#include "perf/metrics.hpp"

namespace swve::obs {

enum class MetricsFormat { Text, Prometheus, Json };

/// Identity of this build, exported as the swve_build_info gauge (the
/// Prometheus idiom for version metadata: value 1, facts in labels) and
/// the JSON "build" section.
struct BuildInfo {
  const char* version;   ///< project version (CMake PROJECT_VERSION)
  const char* compiler;  ///< compiler identification (__VERSION__)
  const char* isas;      ///< ISA tiers compiled into this binary, "+"-joined
};
BuildInfo build_info() noexcept;

/// Parse "text" / "prom" / "prometheus" / "json" (case-sensitive, like the
/// CLI); nullopt for anything else.
std::optional<MetricsFormat> metrics_format_from_string(const std::string& s);

/// Render `snapshot` in the requested format. Text delegates to
/// MetricsSnapshot::to_string().
std::string render_metrics(const perf::MetricsSnapshot& snapshot,
                           MetricsFormat format);

/// Prometheus text exposition (swve_* metric families).
std::string to_prometheus(const perf::MetricsSnapshot& snapshot);

/// JSON object mirroring the snapshot (requests / scenarios / kernel /
/// window / targets / pool / histograms).
std::string to_json(const perf::MetricsSnapshot& snapshot);

}  // namespace swve::obs
