// Machine-readable renderings of perf::MetricsSnapshot.
//
// The human text dump (MetricsSnapshot::to_string) is for eyeballs; these
// exporters are for scrapers: Prometheus text exposition format 0.0.4
// (`name{labels} value` lines with HELP/TYPE headers, cumulative `le`
// histogram buckets) and a JSON object that round-trips every counter.
// The metric schema is documented in docs/observability.md.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "obs/slo.hpp"
#include "perf/metrics.hpp"

namespace swve::obs {

enum class MetricsFormat { Text, Prometheus, Json };

/// Identity of this build, exported as the swve_build_info gauge (the
/// Prometheus idiom for version metadata: value 1, facts in labels) and
/// the JSON "build" section.
struct BuildInfo {
  const char* version;   ///< project version (CMake PROJECT_VERSION)
  const char* compiler;  ///< compiler identification (__VERSION__)
  const char* isas;      ///< ISA tiers compiled into this binary, "+"-joined
};
BuildInfo build_info() noexcept;

/// Parse "text" / "prom" / "prometheus" / "json" (case-sensitive, like the
/// CLI); nullopt for anything else.
std::optional<MetricsFormat> metrics_format_from_string(const std::string& s);

/// Escape a string for splicing into a Prometheus label value: backslash,
/// double quote, and newline per exposition format 0.0.4. Any runtime
/// string entering a label MUST pass through this (compiler version
/// strings contain quotes on some toolchains).
std::string prom_escape_label(std::string_view value);

/// Render `snapshot` in the requested format. Text delegates to
/// MetricsSnapshot::to_string(). `slo` (optional) adds the burn-rate
/// alert state to the Prometheus and JSON renderings.
std::string render_metrics(const perf::MetricsSnapshot& snapshot,
                           MetricsFormat format,
                           const SloStatus* slo = nullptr);

/// Prometheus text exposition (swve_* metric families).
std::string to_prometheus(const perf::MetricsSnapshot& snapshot);
/// Test seam: render with an explicit BuildInfo instead of the compiled-in
/// identity (hostile label values must come out escaped), and optionally
/// the SLO alert state (swve_slo_* families).
std::string to_prometheus(const perf::MetricsSnapshot& snapshot,
                          const BuildInfo& build,
                          const SloStatus* slo = nullptr);

/// JSON object mirroring the snapshot (requests / scenarios / kernel /
/// window / targets / pool / histograms).
std::string to_json(const perf::MetricsSnapshot& snapshot,
                    const SloStatus* slo = nullptr);

}  // namespace swve::obs
