#include "obs/slo.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/log.hpp"

namespace swve::obs {

const char* alert_state_name(AlertState s) noexcept {
  switch (s) {
    case AlertState::Ok: return "ok";
    case AlertState::Warning: return "warning";
    case AlertState::Firing: return "firing";
  }
  return "?";
}

SloEngine::SloEngine(SloOptions options, const TimeSeriesStore* store)
    : opt_(options), store_(store) {
  if (opt_.fast_window_s <= 0) opt_.fast_window_s = 60;
  if (opt_.slow_window_s < opt_.fast_window_s)
    opt_.slow_window_s = opt_.fast_window_s;
  if (opt_.enter_evals < 1) opt_.enter_evals = 1;
  if (opt_.exit_evals < 1) opt_.exit_evals = 1;
}

SloEngine::Burn SloEngine::window_burn(
    const std::vector<TimeSeriesPoint>& pts, double now_s,
    double window_s) const {
  Burn burn;
  uint64_t lat_bad = 0, lat_total = 0, av_bad = 0, av_total = 0;
  const double cutoff = now_s - window_s;
  for (const TimeSeriesPoint& p : pts) {
    if (p.t_s < cutoff) continue;
    if (opt_.latency_target_s > 0) {
      lat_bad += p.latency.count_over(opt_.latency_target_s);
      lat_total += p.latency.count;
    }
    av_bad += p.error_delta;
    av_total += p.completed_delta + p.error_delta;
  }
  if (opt_.latency_target_s > 0 && lat_total > 0) {
    const double budget = 1.0 - opt_.latency_objective;
    if (budget > 0)
      burn.latency = (static_cast<double>(lat_bad) /
                      static_cast<double>(lat_total)) /
                     budget;
  }
  if (opt_.availability_objective > 0 && av_total > 0) {
    const double budget = 1.0 - opt_.availability_objective;
    if (budget > 0)
      burn.availability =
          (static_cast<double>(av_bad) / static_cast<double>(av_total)) /
          budget;
  }
  return burn;
}

SloStatus SloEngine::evaluate(double t_s) {
  const std::vector<TimeSeriesPoint> pts =
      store_ ? store_->points(opt_.slow_window_s)
             : std::vector<TimeSeriesPoint>{};
  const Burn fast = window_burn(pts, t_s, opt_.fast_window_s);
  const Burn slow = window_burn(pts, t_s, opt_.slow_window_s);

  // Multi-window condition per objective: both windows burning. The alert
  // severity is the worst objective's.
  const double lat = std::min(fast.latency, slow.latency);
  const double avail = std::min(fast.availability, slow.availability);
  const double worst = std::max(lat, avail);
  const AlertState instant = worst >= opt_.firing_burn ? AlertState::Firing
                             : worst >= opt_.warning_burn
                                 ? AlertState::Warning
                                 : AlertState::Ok;

  std::lock_guard<std::mutex> lk(mu_);
  status_.instant = instant;
  status_.latency_fast_burn = fast.latency;
  status_.latency_slow_burn = slow.latency;
  status_.availability_fast_burn = fast.availability;
  status_.availability_slow_burn = slow.availability;
  status_.evaluations += 1;

  // Hysteresis: escalate after enter_evals consecutive higher-severity
  // evaluations, de-escalate after exit_evals consecutive lower-severity
  // ones. Matching severity resets both streaks.
  AlertState next = status_.state;
  if (instant > status_.state) {
    down_streak_ = 0;
    if (++up_streak_ >= opt_.enter_evals) next = instant;
  } else if (instant < status_.state) {
    up_streak_ = 0;
    if (++down_streak_ >= opt_.exit_evals) next = instant;
  } else {
    up_streak_ = down_streak_ = 0;
  }
  if (next != status_.state) {
    const AlertState from = status_.state;
    status_.state = next;
    status_.transitions += 1;
    status_.since_s = t_s;
    up_streak_ = down_streak_ = 0;
    const LogField fields[] = {
        {"from", alert_state_name(from)},
        {"to", alert_state_name(next)},
        {"latency_burn", slow.latency},
        {"availability_burn", slow.availability},
        {"evaluations", static_cast<unsigned long long>(status_.evaluations)},
    };
    if (next == AlertState::Ok)
      log_info("slo.state_change", {fields[0], fields[1], fields[2],
                                    fields[3], fields[4]});
    else
      log_warn("slo.state_change", {fields[0], fields[1], fields[2],
                                    fields[3], fields[4]});
  }
  return status_;
}

SloStatus SloEngine::status() const {
  std::lock_guard<std::mutex> lk(mu_);
  return status_;
}

std::string SloEngine::json() const {
  const SloStatus s = status();
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"state\":\"%s\",\"instant\":\"%s\","
      "\"latency\":{\"target_ms\":%.6g,\"objective\":%.6g,"
      "\"fast_burn\":%.4g,\"slow_burn\":%.4g},"
      "\"availability\":{\"objective\":%.6g,\"fast_burn\":%.4g,"
      "\"slow_burn\":%.4g},"
      "\"windows\":{\"fast_s\":%.6g,\"slow_s\":%.6g},"
      "\"thresholds\":{\"firing\":%.6g,\"warning\":%.6g},"
      "\"evaluations\":%llu,\"transitions\":%llu,\"since_s\":%.3f}",
      alert_state_name(s.state), alert_state_name(s.instant),
      opt_.latency_target_s * 1e3, opt_.latency_objective,
      s.latency_fast_burn, s.latency_slow_burn, opt_.availability_objective,
      s.availability_fast_burn, s.availability_slow_burn, opt_.fast_window_s,
      opt_.slow_window_s, opt_.firing_burn, opt_.warning_burn,
      static_cast<unsigned long long>(s.evaluations),
      static_cast<unsigned long long>(s.transitions), s.since_s);
  return buf;
}

}  // namespace swve::obs
