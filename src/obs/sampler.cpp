#include "obs/sampler.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "perf/freq_monitor.hpp"

namespace swve::obs {

Sampler::Sampler(SamplerOptions options, Source source)
    : opt_(options),
      source_(std::move(source)),
      start_(std::chrono::steady_clock::now()) {
  if (opt_.period_s <= 0) opt_.period_s = 1.0;
  if (opt_.freq_probe_ms <= 0) opt_.freq_probe_ms = 1.0;
  if (opt_.capacity == 0) opt_.capacity = 1;
  thread_ = std::thread([this] { loop(); });
}

Sampler::~Sampler() { stop(); }

void Sampler::stop() {
  // Claim the thread handle under the lock, join outside it. Exactly one
  // of any number of concurrent stop() callers (the destructor included)
  // gets the live handle; the rest swap an empty thread and return without
  // ever touching thread_ unsynchronized.
  std::thread t;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    t.swap(thread_);
  }
  cv_.notify_all();
  if (t.joinable()) t.join();
}

Sample Sampler::take_sample() {
  Sample s;
  s.t_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
  s.ghz = perf::measure_frequency(opt_.freq_probe_ms).ghz;
  // Kernel-reported clock, averaged over whichever CPUs expose cpufreq;
  // stays 0 (and costs a handful of failed opens) where the sysfs tree is
  // absent or partial — never aborts the sampler loop.
  const perf::CpufreqSummary cf = perf::cpufreq_summary(
      static_cast<int>(std::thread::hardware_concurrency()));
  s.cpufreq_ghz = cf.mean_khz * 1e-6;
  const perf::MetricsSnapshot m = source_();
  s.completed = m.completed;
  s.cells = m.cells;
  s.kernel_seconds = m.kernel_seconds;
  s.window_gcups = m.window_gcups();
  s.pool_utilization = m.pool_utilization();
  if (opt_.on_sample) opt_.on_sample(s.t_s, m);
  return s;
}

void Sampler::loop() {
  const auto period = std::chrono::duration<double>(opt_.period_s);
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    lk.unlock();
    Sample s = take_sample();  // probe + snapshot outside the lock
    lk.lock();
    if (stop_) break;
    ring_.push_back(s);
    if (ring_.size() > opt_.capacity)
      ring_.erase(ring_.begin(),
                  ring_.begin() + static_cast<ptrdiff_t>(ring_.size() -
                                                         opt_.capacity));
    cv_.wait_for(lk, period, [this] { return stop_; });
  }
}

std::vector<Sample> Sampler::samples() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ring_;
}

std::string Sampler::json() const {
  const std::vector<Sample> snap = samples();
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "{\"period_s\":%.6g,\"samples\":[",
                opt_.period_s);
  out += buf;
  for (size_t i = 0; i < snap.size(); ++i) {
    const Sample& s = snap[i];
    std::snprintf(buf, sizeof buf,
                  "%s\n{\"t_s\":%.3f,\"ghz\":%.3f,\"cpufreq_ghz\":%.3f,"
                  "\"completed\":%" PRIu64 ",\"cells\":%" PRIu64
                  ",\"kernel_seconds\":%.6g,\"window_gcups\":%.6g,"
                  "\"pool_utilization\":%.6g}",
                  i ? "," : "", s.t_s, s.ghz, s.cpufreq_ghz, s.completed,
                  s.cells, s.kernel_seconds, s.window_gcups,
                  s.pool_utilization);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

}  // namespace swve::obs
