#include "obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "perf/metrics.hpp"

namespace swve::obs {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

std::atomic<uint64_t> g_sink_ids{0};

uint64_t pack_meta(const TraceEvent& e) noexcept {
  // Lanes only need 24 bits (64 max today); the top byte carries the
  // batch-kernel interleave depth.
  return static_cast<uint64_t>(static_cast<uint8_t>(e.isa)) |
         static_cast<uint64_t>(static_cast<uint8_t>(e.trunc)) << 8 |
         static_cast<uint64_t>(e.width_bits) << 16 |
         static_cast<uint64_t>(e.lanes & 0xffffff) << 32 |
         static_cast<uint64_t>(e.ilp) << 56;
}

void unpack_meta(uint64_t m, TraceEvent& e) noexcept {
  e.isa = static_cast<simd::Isa>(m & 0xff);
  e.trunc = static_cast<TruncCause>((m >> 8) & 0xff);
  e.width_bits = static_cast<uint16_t>((m >> 16) & 0xffff);
  e.lanes = static_cast<uint32_t>((m >> 32) & 0xffffff);
  e.ilp = static_cast<uint8_t>(m >> 56);
}

/// Append one event's "args" object body (after the opening brace) to a
/// stack buffer; returns characters written. Shared by the allocating and
/// the signal-safe exporters, snprintf-only.
int format_event_args(char* buf, size_t cap, const TraceEvent& e) noexcept {
  int n = std::snprintf(buf, cap, "\"trace_id\":%" PRIu64, e.trace_id);
  const auto app = [&](const char* fmt, auto... a) {
    if (n >= 0 && static_cast<size_t>(n) < cap)
      n += std::snprintf(buf + n, cap - static_cast<size_t>(n), fmt, a...);
  };
  if (e.isa != simd::Isa::Auto) app(",\"isa\":\"%s\"", simd::isa_name(e.isa));
  if (e.width_bits != 0) app(",\"width_bits\":%u", e.width_bits);
  if (e.lanes != 0) app(",\"lanes\":%u", e.lanes);
  if (e.ilp != 0) app(",\"ilp\":%u", e.ilp);
  if (e.cells != 0) app(",\"cells\":%" PRIu64, e.cells);
  if (e.useful_cells != 0)
    app(",\"useful_cells\":%" PRIu64, e.useful_cells);
  if (e.index != TraceEvent::kNoIndex) app(",\"index\":%" PRIu64, e.index);
  if (e.trunc != TruncCause::None)
    app(",\"trunc\":\"%s\"", trunc_cause_name(e.trunc));
  if (e.cycles != 0) {
    app(",\"cycles\":%" PRIu64 ",\"instructions\":%" PRIu64
        ",\"stall_fe\":%" PRIu64 ",\"stall_be\":%" PRIu64
        ",\"llc_miss\":%" PRIu64 ",\"branch_miss\":%" PRIu64
        ",\"ipc\":%.3f,\"eff_ghz\":%.3f",
        e.cycles, e.instructions, e.stall_frontend, e.stall_backend,
        e.llc_misses, e.branch_misses, e.ipc(), e.effective_ghz());
  }
  return n;
}

#if defined(__unix__) || defined(__APPLE__)
bool write_all(int fd, const char* p, size_t n) noexcept {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}
#endif

}  // namespace

const char* trunc_cause_name(TruncCause c) noexcept {
  switch (c) {
    case TruncCause::None: return "none";
    case TruncCause::Cancelled: return "cancelled";
    case TruncCause::Deadline: return "deadline";
  }
  return "?";
}

TraceSink::TraceSink(size_t events_per_thread, unsigned max_threads)
    : capacity_(std::bit_ceil(std::max<size_t>(events_per_thread, 2))),
      mask_(capacity_ - 1),
      max_threads_(std::max(1u, max_threads)),
      rings_(new Ring[max_threads_]),
      epoch_(std::chrono::steady_clock::now()),
      epoch_steady_ns_(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              epoch_.time_since_epoch())
              .count())),
      sink_id_(g_sink_ids.fetch_add(1, kRelaxed) + 1) {
  for (unsigned r = 0; r < max_threads_; ++r)
    rings_[r].slots.reset(new Slot[capacity_]);
}

uint64_t TraceSink::now_ns() const noexcept {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

int TraceSink::ring_index() noexcept {
  // One cache entry per thread: a thread that alternates between two live
  // sinks re-registers on each switch (acceptable — the expected shape is
  // one sink per process).
  struct Cache {
    uint64_t sink_id = 0;
    int idx = -1;
  };
  thread_local Cache cache;
  if (cache.sink_id == sink_id_) return cache.idx;
  const unsigned i = registered_.fetch_add(1, kRelaxed);
  cache.sink_id = sink_id_;
  cache.idx = i < max_threads_ ? static_cast<int>(i) : -1;
  return cache.idx;
}

void TraceSink::record(const TraceEvent& event) noexcept {
  const int r = ring_index();
  if (r < 0) {
    overflow_dropped_.fetch_add(1, kRelaxed);
    return;
  }
  Ring& ring = rings_[r];
  const uint64_t h = ring.head.load(kRelaxed);  // single producer: this thread
  Slot& s = ring.slots[h & mask_];
  const uint64_t v = s.version.load(kRelaxed);
  s.version.store(v + 1, kRelaxed);  // odd: write in progress
  std::atomic_thread_fence(std::memory_order_release);
  s.name.store(event.name, kRelaxed);
  s.trace_id.store(event.trace_id, kRelaxed);
  s.ts_ns.store(event.ts_ns, kRelaxed);
  s.dur_ns.store(event.dur_ns, kRelaxed);
  s.meta.store(pack_meta(event), kRelaxed);
  s.cells.store(event.cells, kRelaxed);
  s.useful_cells.store(event.useful_cells, kRelaxed);
  s.index.store(event.index, kRelaxed);
  s.cycles.store(event.cycles, kRelaxed);
  s.instructions.store(event.instructions, kRelaxed);
  s.stall_frontend.store(event.stall_frontend, kRelaxed);
  s.stall_backend.store(event.stall_backend, kRelaxed);
  s.llc_misses.store(event.llc_misses, kRelaxed);
  s.branch_misses.store(event.branch_misses, kRelaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.version.store(v + 2, kRelaxed);
  ring.head.store(h + 1, std::memory_order_release);
}

void TraceSink::record_span(const char* name, uint64_t trace_id,
                            uint64_t t0_ns, uint64_t t1_ns) noexcept {
  TraceEvent e;
  e.name = name;
  e.trace_id = trace_id;
  e.ts_ns = t0_ns;
  e.dur_ns = t1_ns > t0_ns ? t1_ns - t0_ns : 0;
  record(e);
}

uint64_t TraceSink::recorded() const noexcept {
  uint64_t n = 0;
  const unsigned live = std::min(registered_.load(kRelaxed), max_threads_);
  for (unsigned r = 0; r < live; ++r) n += rings_[r].head.load(kRelaxed);
  return n + overflow_dropped_.load(kRelaxed);
}

uint64_t TraceSink::wrap_dropped() const noexcept {
  uint64_t n = 0;
  const unsigned live = std::min(registered_.load(kRelaxed), max_threads_);
  for (unsigned r = 0; r < live; ++r) {
    const uint64_t h = rings_[r].head.load(kRelaxed);
    if (h > capacity_) n += h - capacity_;
  }
  return n;
}

uint64_t TraceSink::dropped() const noexcept {
  return wrap_dropped() + overflow_dropped_.load(kRelaxed) +
         torn_skipped_.load(kRelaxed);
}

bool TraceSink::read_slot(const Slot& s, TraceEvent& e) const noexcept {
  const uint64_t v1 = s.version.load(std::memory_order_acquire);
  if (v1 & 1) {  // mid-write
    torn_skipped_.fetch_add(1, kRelaxed);
    return false;
  }
  e.name = s.name.load(kRelaxed);
  e.trace_id = s.trace_id.load(kRelaxed);
  e.ts_ns = s.ts_ns.load(kRelaxed);
  e.dur_ns = s.dur_ns.load(kRelaxed);
  unpack_meta(s.meta.load(kRelaxed), e);
  e.cells = s.cells.load(kRelaxed);
  e.useful_cells = s.useful_cells.load(kRelaxed);
  e.index = s.index.load(kRelaxed);
  e.cycles = s.cycles.load(kRelaxed);
  e.instructions = s.instructions.load(kRelaxed);
  e.stall_frontend = s.stall_frontend.load(kRelaxed);
  e.stall_backend = s.stall_backend.load(kRelaxed);
  e.llc_misses = s.llc_misses.load(kRelaxed);
  e.branch_misses = s.branch_misses.load(kRelaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.version.load(kRelaxed) != v1 || e.name == nullptr) {
    torn_skipped_.fetch_add(1, kRelaxed);  // overwritten while reading
    return false;
  }
  return true;
}

std::vector<TraceEvent> TraceSink::snapshot_events() const {
  std::vector<TraceEvent> out;
  const unsigned live = std::min(registered_.load(kRelaxed), max_threads_);
  for (unsigned r = 0; r < live; ++r) {
    const Ring& ring = rings_[r];
    const uint64_t h = ring.head.load(std::memory_order_acquire);
    const uint64_t begin = h > capacity_ ? h - capacity_ : 0;
    for (uint64_t i = begin; i < h; ++i) {
      TraceEvent e;
      if (!read_slot(ring.slots[i & mask_], e)) continue;
      e.tid = r;
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns : a.tid < b.tid;
            });
  return out;
}

size_t TraceSink::read_events(TraceEvent* out, size_t max) const noexcept {
  size_t n = 0;
  const unsigned live = std::min(registered_.load(kRelaxed), max_threads_);
  for (unsigned r = 0; r < live && n < max; ++r) {
    const Ring& ring = rings_[r];
    const uint64_t h = ring.head.load(std::memory_order_acquire);
    const uint64_t begin = h > capacity_ ? h - capacity_ : 0;
    for (uint64_t i = begin; i < h && n < max; ++i) {
      TraceEvent e;
      if (!read_slot(ring.slots[i & mask_], e)) continue;
      e.tid = r;
      out[n++] = e;
    }
  }
  return n;
}

std::string TraceSink::chrome_trace_json() const {
  const std::vector<TraceEvent> events = snapshot_events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[512];
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof buf,
                  "\n{\"name\":\"%s\",\"cat\":\"swve\",\"ph\":\"X\","
                  "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,\"args\":{",
                  e.name, e.tid, static_cast<double>(e.ts_ns) * 1e-3,
                  static_cast<double>(e.dur_ns) * 1e-3);
    out += buf;
    format_event_args(buf, sizeof buf, e);
    out += buf;
    out += "}}";
    // PMU spans get companion counter tracks ("ph":"C"): an ipc/ghz
    // sample at the span's end, one track pair per thread — Perfetto draws
    // them as stacked per-thread graphs under the slices.
    if (e.cycles != 0 && e.dur_ns != 0) {
      const double end_us = static_cast<double>(e.ts_ns + e.dur_ns) * 1e-3;
      std::snprintf(buf, sizeof buf,
                    ",\n{\"name\":\"ipc tid %u\",\"cat\":\"swve\",\"ph\":\"C\","
                    "\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                    "\"args\":{\"ipc\":%.3f}}"
                    ",\n{\"name\":\"ghz tid %u\",\"cat\":\"swve\",\"ph\":\"C\","
                    "\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                    "\"args\":{\"ghz\":%.3f}}",
                    e.tid, e.tid, end_us, e.ipc(), e.tid, e.tid, end_us,
                    e.effective_ghz());
      out += buf;
    }
  }
  char tail[96];
  std::snprintf(tail, sizeof tail,
                "\n],\"otherData\":{\"dropped_events\":%" PRIu64 "}}\n",
                dropped());
  out += tail;
  return out;
}

bool TraceSink::write_chrome_trace(int fd) const noexcept {
#if defined(__unix__) || defined(__APPLE__)
  // Signal-handler path: slot-by-slot seqlock reads, one snprintf+write(2)
  // per event, zero allocation. Events come out in ring order — trace
  // viewers sort by ts, so that is fine.
  static constexpr char kHead[] = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  if (!write_all(fd, kHead, sizeof kHead - 1)) return false;
  char buf[768];
  bool first = true;
  const unsigned live = std::min(registered_.load(kRelaxed), max_threads_);
  for (unsigned r = 0; r < live; ++r) {
    const Ring& ring = rings_[r];
    const uint64_t h = ring.head.load(std::memory_order_acquire);
    const uint64_t begin = h > capacity_ ? h - capacity_ : 0;
    for (uint64_t i = begin; i < h; ++i) {
      TraceEvent e;
      if (!read_slot(ring.slots[i & mask_], e)) continue;
      e.tid = r;
      int n = std::snprintf(
          buf, sizeof buf,
          "%s\n{\"name\":\"%s\",\"cat\":\"swve\",\"ph\":\"X\","
          "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,\"args\":{",
          first ? "" : ",", e.name, e.tid,
          static_cast<double>(e.ts_ns) * 1e-3,
          static_cast<double>(e.dur_ns) * 1e-3);
      if (n < 0 || static_cast<size_t>(n) >= sizeof buf) continue;
      first = false;
      const int a = format_event_args(buf + n, sizeof buf - n - 4, e);
      if (a > 0) n += std::min(a, static_cast<int>(sizeof buf) - n - 4);
      buf[n++] = '}';
      buf[n++] = '}';
      if (!write_all(fd, buf, static_cast<size_t>(n))) return false;
    }
  }
  const int n =
      std::snprintf(buf, sizeof buf,
                    "\n],\"otherData\":{\"dropped_events\":%" PRIu64 "}}\n",
                    dropped());
  return n > 0 && write_all(fd, buf, static_cast<size_t>(n));
#else
  (void)fd;
  return false;
#endif
}

void Span::begin(const TraceContext& ctx, const char* name) noexcept {
  live_ = true;
  sink_ = ctx.sink;
  pmu_ = ctx.pmu;
  registry_ = ctx.registry;
  ev_.name = name;
  ev_.trace_id = ctx.trace_id;
  // One clock read either way: a PMU read stamps `ns` itself.
  start_ = pmu_ != nullptr ? pmu_->read() : PmuReading{};
  if (!start_.hw && start_.ns == 0) start_.ns = steady_now_ns();
}

void Span::finish() noexcept {
  live_ = false;
  const PmuReading end_reading =
      pmu_ != nullptr ? pmu_->read() : PmuReading{.ns = steady_now_ns()};
  const PmuDelta d = PmuSession::delta(start_, end_reading);
  ev_.dur_ns = d.wall_ns;
  if (d.hw) {
    ev_.cycles = d.cycles;
    ev_.instructions = d.instructions;
    ev_.stall_frontend = d.stall_frontend;
    ev_.stall_backend = d.stall_backend;
    ev_.llc_misses = d.llc_misses;
    ev_.branch_misses = d.branch_misses;
  }
  if (sink_ != nullptr) {
    ev_.ts_ns = start_.ns > sink_->epoch_steady_ns()
                    ? start_.ns - sink_->epoch_steady_ns()
                    : 0;
    sink_->record(ev_);
  }
  // Kernel spans aggregate into the ISA×kernel×width attribution cell even
  // without hardware counters — wall time still feeds per-cell GCUPS and
  // keeps the fallback observable.
  if (registry_ != nullptr && has_kernel_) {
    perf::PmuSample s;
    s.samples = 1;
    s.wall_ns = d.wall_ns;
    s.cycles = ev_.cycles;
    s.instructions = ev_.instructions;
    s.stall_frontend = ev_.stall_frontend;
    s.stall_backend = ev_.stall_backend;
    s.llc_misses = ev_.llc_misses;
    s.branch_misses = ev_.branch_misses;
    registry_->on_pmu_sample(ev_.isa, kernel_, ev_.width_bits, s);
  }
}

}  // namespace swve::obs
