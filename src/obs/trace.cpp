#include "obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>

namespace swve::obs {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

std::atomic<uint64_t> g_sink_ids{0};

uint64_t pack_meta(const TraceEvent& e) noexcept {
  return static_cast<uint64_t>(static_cast<uint8_t>(e.isa)) |
         static_cast<uint64_t>(static_cast<uint8_t>(e.trunc)) << 8 |
         static_cast<uint64_t>(e.width_bits) << 16 |
         static_cast<uint64_t>(e.lanes) << 32;
}

void unpack_meta(uint64_t m, TraceEvent& e) noexcept {
  e.isa = static_cast<simd::Isa>(m & 0xff);
  e.trunc = static_cast<TruncCause>((m >> 8) & 0xff);
  e.width_bits = static_cast<uint16_t>((m >> 16) & 0xffff);
  e.lanes = static_cast<uint32_t>(m >> 32);
}

}  // namespace

const char* trunc_cause_name(TruncCause c) noexcept {
  switch (c) {
    case TruncCause::None: return "none";
    case TruncCause::Cancelled: return "cancelled";
    case TruncCause::Deadline: return "deadline";
  }
  return "?";
}

TraceSink::TraceSink(size_t events_per_thread, unsigned max_threads)
    : capacity_(std::bit_ceil(std::max<size_t>(events_per_thread, 2))),
      mask_(capacity_ - 1),
      max_threads_(std::max(1u, max_threads)),
      rings_(new Ring[max_threads_]),
      epoch_(std::chrono::steady_clock::now()),
      sink_id_(g_sink_ids.fetch_add(1, kRelaxed) + 1) {
  for (unsigned r = 0; r < max_threads_; ++r)
    rings_[r].slots.reset(new Slot[capacity_]);
}

uint64_t TraceSink::now_ns() const noexcept {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

int TraceSink::ring_index() noexcept {
  // One cache entry per thread: a thread that alternates between two live
  // sinks re-registers on each switch (acceptable — the expected shape is
  // one sink per process).
  struct Cache {
    uint64_t sink_id = 0;
    int idx = -1;
  };
  thread_local Cache cache;
  if (cache.sink_id == sink_id_) return cache.idx;
  const unsigned i = registered_.fetch_add(1, kRelaxed);
  cache.sink_id = sink_id_;
  cache.idx = i < max_threads_ ? static_cast<int>(i) : -1;
  return cache.idx;
}

void TraceSink::record(const TraceEvent& event) noexcept {
  const int r = ring_index();
  if (r < 0) {
    overflow_dropped_.fetch_add(1, kRelaxed);
    return;
  }
  Ring& ring = rings_[r];
  const uint64_t h = ring.head.load(kRelaxed);  // single producer: this thread
  Slot& s = ring.slots[h & mask_];
  const uint64_t v = s.version.load(kRelaxed);
  s.version.store(v + 1, kRelaxed);  // odd: write in progress
  std::atomic_thread_fence(std::memory_order_release);
  s.name.store(event.name, kRelaxed);
  s.trace_id.store(event.trace_id, kRelaxed);
  s.ts_ns.store(event.ts_ns, kRelaxed);
  s.dur_ns.store(event.dur_ns, kRelaxed);
  s.meta.store(pack_meta(event), kRelaxed);
  s.cells.store(event.cells, kRelaxed);
  s.useful_cells.store(event.useful_cells, kRelaxed);
  s.index.store(event.index, kRelaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.version.store(v + 2, kRelaxed);
  ring.head.store(h + 1, std::memory_order_release);
}

void TraceSink::record_span(const char* name, uint64_t trace_id,
                            uint64_t t0_ns, uint64_t t1_ns) noexcept {
  TraceEvent e;
  e.name = name;
  e.trace_id = trace_id;
  e.ts_ns = t0_ns;
  e.dur_ns = t1_ns > t0_ns ? t1_ns - t0_ns : 0;
  record(e);
}

uint64_t TraceSink::recorded() const noexcept {
  uint64_t n = 0;
  const unsigned live = std::min(registered_.load(kRelaxed), max_threads_);
  for (unsigned r = 0; r < live; ++r) n += rings_[r].head.load(kRelaxed);
  return n + overflow_dropped_.load(kRelaxed);
}

uint64_t TraceSink::dropped() const noexcept {
  uint64_t n = overflow_dropped_.load(kRelaxed) + torn_skipped_.load(kRelaxed);
  const unsigned live = std::min(registered_.load(kRelaxed), max_threads_);
  for (unsigned r = 0; r < live; ++r) {
    const uint64_t h = rings_[r].head.load(kRelaxed);
    if (h > capacity_) n += h - capacity_;
  }
  return n;
}

std::vector<TraceEvent> TraceSink::snapshot_events() const {
  std::vector<TraceEvent> out;
  const unsigned live = std::min(registered_.load(kRelaxed), max_threads_);
  for (unsigned r = 0; r < live; ++r) {
    const Ring& ring = rings_[r];
    const uint64_t h = ring.head.load(std::memory_order_acquire);
    const uint64_t begin = h > capacity_ ? h - capacity_ : 0;
    for (uint64_t i = begin; i < h; ++i) {
      const Slot& s = ring.slots[i & mask_];
      const uint64_t v1 = s.version.load(std::memory_order_acquire);
      if (v1 & 1) {  // mid-write
        torn_skipped_.fetch_add(1, kRelaxed);
        continue;
      }
      TraceEvent e;
      e.name = s.name.load(kRelaxed);
      e.trace_id = s.trace_id.load(kRelaxed);
      e.ts_ns = s.ts_ns.load(kRelaxed);
      e.dur_ns = s.dur_ns.load(kRelaxed);
      unpack_meta(s.meta.load(kRelaxed), e);
      e.cells = s.cells.load(kRelaxed);
      e.useful_cells = s.useful_cells.load(kRelaxed);
      e.index = s.index.load(kRelaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.version.load(kRelaxed) != v1 || e.name == nullptr) {
        torn_skipped_.fetch_add(1, kRelaxed);  // overwritten while reading
        continue;
      }
      e.tid = r;
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns : a.tid < b.tid;
            });
  return out;
}

std::string TraceSink::chrome_trace_json() const {
  const std::vector<TraceEvent> events = snapshot_events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof buf,
                  "\n{\"name\":\"%s\",\"cat\":\"swve\",\"ph\":\"X\","
                  "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,\"args\":{",
                  e.name, e.tid, static_cast<double>(e.ts_ns) * 1e-3,
                  static_cast<double>(e.dur_ns) * 1e-3);
    out += buf;
    std::snprintf(buf, sizeof buf, "\"trace_id\":%" PRIu64, e.trace_id);
    out += buf;
    if (e.isa != simd::Isa::Auto) {
      out += ",\"isa\":\"";
      out += simd::isa_name(e.isa);
      out += "\"";
    }
    if (e.width_bits != 0) {
      std::snprintf(buf, sizeof buf, ",\"width_bits\":%u", e.width_bits);
      out += buf;
    }
    if (e.lanes != 0) {
      std::snprintf(buf, sizeof buf, ",\"lanes\":%u", e.lanes);
      out += buf;
    }
    if (e.cells != 0) {
      std::snprintf(buf, sizeof buf, ",\"cells\":%" PRIu64, e.cells);
      out += buf;
    }
    if (e.useful_cells != 0) {
      std::snprintf(buf, sizeof buf, ",\"useful_cells\":%" PRIu64,
                    e.useful_cells);
      out += buf;
    }
    if (e.index != TraceEvent::kNoIndex) {
      std::snprintf(buf, sizeof buf, ",\"index\":%" PRIu64, e.index);
      out += buf;
    }
    if (e.trunc != TruncCause::None) {
      out += ",\"trunc\":\"";
      out += trunc_cause_name(e.trunc);
      out += "\"";
    }
    out += "}}";
  }
  char tail[96];
  std::snprintf(tail, sizeof tail,
                "\n],\"otherData\":{\"dropped_events\":%" PRIu64 "}}\n",
                dropped());
  out += tail;
  return out;
}

}  // namespace swve::obs
