// Telemetry history (ISSUE 9 tentpole): a fixed-cadence, bounded ring of
// delta-encoded samples derived from consecutive MetricsSnapshot diffs.
//
// Everything else in the observability stack answers "what is true right
// now"; this store answers "what changed over the last N seconds" — the
// feed the /varz endpoint streams, the SLO engine computes burn rates
// over, and the ROADMAP's online autotuner will key its per-(ISA × kernel
// × length-bin) decisions on. Each point carries *window* statistics
// (rates and per-window percentiles), not raw counters, so a reader never
// has to re-derive deltas: QPS per QoS tier, per-tier latency quantiles
// recomputed from subtracted histogram buckets, result-cache hit rate,
// queue depth, log-drop counts, active PMU attribution cells (IPC,
// backend-stall fraction, effective GHz over the interval), the AVX-512
// frequency ratio, and the query-length regime histogram.
//
// The store does not own a thread: push() is called from the existing
// obs::Sampler tick (SamplerOptions::on_sample), so enabling history costs
// one snapshot diff per cadence and ~1 KiB per retained point.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "perf/metrics.hpp"

namespace swve::obs {

struct TimeSeriesOptions {
  double cadence_s = 1.0;  ///< nominal push period (reported, not enforced —
                           ///< the sampler thread owns the clock)
  size_t capacity = 600;   ///< points retained (oldest evicted)
};

/// One delta-encoded point: the window between two consecutive pushes.
struct TimeSeriesPoint {
  double t_s = 0;   ///< sample time, seconds on the pusher's clock
  double dt_s = 0;  ///< window length (this push minus the previous one)

  // Request flow over the window.
  double qps = 0;        ///< completed requests / s
  double error_qps = 0;  ///< rejected + deadline + invalid + aborted / s
  uint64_t completed_delta = 0;
  uint64_t submitted_delta = 0;
  uint64_t error_delta = 0;

  // Per-QoS-tier flow and window latency quantiles (recomputed from the
  // subtracted histogram buckets, not lifetime percentiles).
  std::array<double, perf::MetricsSnapshot::kQosTiers> tier_qps{};
  std::array<double, perf::MetricsSnapshot::kQosTiers> tier_p50_s{};
  std::array<double, perf::MetricsSnapshot::kQosTiers> tier_p99_s{};

  /// All-tier window latency histogram (merged tier deltas) — the SLO
  /// engine counts objective violations against this without the store
  /// knowing the latency target.
  perf::LatencyHistogram::Snapshot latency;

  // Caches / throughput / pressure.
  double cache_hit_rate = 0;  ///< result cache, this window only
  double gcups = 0;           ///< window GCUPS (cells delta / kernel-s delta)
  uint64_t queue_depth = 0;   ///< gauge at sample time
  uint64_t log_drops = 0;     ///< log drop+suppress deltas over the window

  // Microarchitecture: PMU attribution cells active in this window.
  struct PmuCellPoint {
    uint8_t isa = 0;     ///< simd::Isa index
    uint8_t kernel = 0;  ///< perf::KernelVariant index
    uint8_t width = 0;   ///< width index (perf::MetricsSnapshot::width_index)
    uint64_t spans = 0;  ///< spans folded in during the window
    double ipc = 0;
    double backend_stall_fraction = 0;
    double effective_ghz = 0;
  };
  std::vector<PmuCellPoint> pmu;  ///< only cells with cycle deltas
  double avx512_frequency_ratio = 0;  ///< lifetime gauge at sample time

  // Sharded search: per-shard window throughput and pressure (empty when
  // batch search runs unsharded). Live shard imbalance is visible as one
  // shard's gcups or queue_depth diverging from its peers'.
  struct ShardPoint {
    uint8_t shard = 0;
    int32_t node = -1;         ///< pinned NUMA node; -1 unpinned
    double gcups = 0;          ///< window cells delta / busy-seconds delta
    uint64_t searches = 0;     ///< searches retired this window
    uint64_t queue_depth = 0;  ///< gauge at sample time
    uint64_t llc_misses = 0;   ///< LLC-miss delta this window (0 = no PMU)
  };
  std::vector<ShardPoint> shards;

  // Workload characterization: queries per length regime this window (the
  // packing policies' geometric bins), plus the busiest bin (-1 = idle).
  std::array<uint64_t, perf::MetricsSnapshot::kLengthBins> length_bins{};
  int dominant_length_bin = -1;
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesOptions options = {});

  /// Fold a fresh snapshot taken at `t_s` (seconds, any monotonic origin —
  /// consecutive pushes must share it) into the ring. The first push seeds
  /// the delta baseline and records no point; a push with a non-positive
  /// dt re-seeds instead of recording a degenerate window. Thread-safe,
  /// but intended for a single pusher (the sampler thread).
  void push(const perf::MetricsSnapshot& snap, double t_s,
            uint64_t queue_depth = 0);

  /// Points within the trailing `window_s` seconds of the newest point,
  /// oldest first (0 = everything retained).
  std::vector<TimeSeriesPoint> points(double window_s = 0) const;

  /// Newest point, if any window has completed.
  bool latest(TimeSeriesPoint* out) const;

  size_t size() const;
  const TimeSeriesOptions& options() const noexcept { return opt_; }

  /// Bounded JSON history for /varz:
  /// {"cadence_s":...,"capacity":...,"points":[{...},...]}. `series` is a
  /// comma-separated subset of {"qps","tiers","latency","cache","gcups",
  /// "queue","log","pmu","freq","lengths","shards"} gating the optional per-point
  /// sections (empty = all); `window_s` bounds history like points().
  std::string json(std::string_view series = {}, double window_s = 0) const;

  /// True when `name` is a known series selector (json() ignores unknown
  /// names; the endpoint uses this to answer 400 instead).
  static bool is_series_name(std::string_view name);

 private:
  TimeSeriesOptions opt_;
  mutable std::mutex mu_;
  bool have_prev_ = false;
  perf::MetricsSnapshot prev_;
  double prev_t_s_ = 0;
  std::deque<TimeSeriesPoint> ring_;
};

}  // namespace swve::obs
