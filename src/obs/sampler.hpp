// Live profiling sampler: a background thread that periodically snapshots
// the effective core frequency (perf::freq_monitor's dependent-add probe)
// and the service metrics into a bounded time-series ring.
//
// This makes the paper's Fig 11 data — effective frequency vs. load — and
// the throughput gauges collectable from a *running* service instead of
// only from the offline bench binaries. The probe runs the spin kernel for
// freq_probe_ms per sample on the sampler thread, so the steady-state
// overhead is period-independent CPU time of roughly
// freq_probe_ms / period_s (e.g. 5 ms probe at 1 s period = 0.5% of one
// core); size the period accordingly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "perf/metrics.hpp"

namespace swve::obs {

struct SamplerOptions {
  double period_s = 1.0;      ///< time between samples
  double freq_probe_ms = 5.0; ///< spin-kernel duration per frequency probe
  size_t capacity = 600;      ///< ring length (oldest samples evicted)

  /// Called from the sampler thread once per tick with the fresh
  /// MetricsSnapshot the sample was projected from (so downstream
  /// consumers — the TimeSeriesStore, the SLO engine — ride the existing
  /// thread and snapshot instead of adding their own). Must stay valid
  /// until stop()/destruction; exceptions must not escape.
  std::function<void(double t_s, const perf::MetricsSnapshot&)> on_sample;
};

/// One point of the time series (compact projection of a MetricsSnapshot
/// plus the frequency probe).
struct Sample {
  double t_s = 0;               ///< seconds since the sampler started
  double ghz = 0;               ///< effective frequency of the sampler core
  double cpufreq_ghz = 0;       ///< mean kernel-reported clock across CPUs
                                ///< (0 where cpufreq sysfs is absent)
  uint64_t completed = 0;
  uint64_t cells = 0;
  double kernel_seconds = 0;
  double window_gcups = 0;
  double pool_utilization = 0;
};

class Sampler {
 public:
  using Source = std::function<perf::MetricsSnapshot()>;

  /// Starts sampling immediately; `source` is called from the sampler
  /// thread and must stay valid until stop()/destruction.
  Sampler(SamplerOptions options, Source source);
  ~Sampler();
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Stop the background thread (idempotent and safe to call from multiple
  /// threads concurrently, including concurrently with the destructor's
  /// implicit stop; the ring remains readable).
  void stop();

  /// Copy of the ring, oldest first.
  std::vector<Sample> samples() const;

  /// Time-series JSON: {"period_s":...,"samples":[{...},...]}.
  std::string json() const;

  const SamplerOptions& options() const noexcept { return opt_; }

 private:
  void loop();
  Sample take_sample();

  SamplerOptions opt_;
  Source source_;
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Sample> ring_;  ///< chronological; trimmed to capacity
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace swve::obs
