#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

#include "obs/log.hpp"
#include "perf/metrics.hpp"

namespace swve::obs {

#if defined(__unix__) || defined(__APPLE__)

namespace {

// Signal handlers are process-global, so the recorder state is too. Paths
// are copied into fixed buffers at install() — the handler never touches
// std::string.
struct Global {
  std::atomic<bool> installed{false};
  std::atomic<int> dumping{0};  // reentrancy guard (e.g. SEGV inside dump)
  char path[512];
  char trace_out[512];
  TraceSink* sink;
  perf::MetricsRegistry* registry;
  const InFlightTable* inflight;
  int notify_fd;
  bool exit_on_term;
  static constexpr int kMaxSigs = 8;
  int sigs[kMaxSigs];
  struct sigaction old_act[kMaxSigs];
  int nsigs;
};
Global g_rec;

bool write_all(int fd, const char* p, size_t n) noexcept {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

void emit(int fd, const char* s) noexcept {
  write_all(fd, s, std::strlen(s));
}

// snprintf is not on the POSIX async-signal-safe list but does not
// allocate in practice (glibc/musl format doubles on the stack); the
// alternative — hand-rolled number formatting — buys little for a
// crash-path dump that is already best-effort.
void emitf(int fd, const char* fmt, ...) noexcept
    __attribute__((format(printf, 2, 3)));
void emitf(int fd, const char* fmt, ...) noexcept {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0)
    write_all(fd, buf, std::min(static_cast<size_t>(n), sizeof buf - 1));
}

const char* signal_name(int sig) noexcept {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
  }
  return "signal";
}

/// The dump body — everything here is async-signal-safe by construction.
bool write_dump(const char* reason, int sig) noexcept {
  if (g_rec.path[0] == '\0') return false;
  const int fd = ::open(g_rec.path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  emitf(fd, "{\"reason\":\"%s\",\"signal\":%d", reason, sig);

  if (g_rec.registry != nullptr) {
    const perf::MetricsSnapshot s = g_rec.registry->snapshot();
    emitf(fd,
          ",\"metrics\":{\"submitted\":%" PRIu64 ",\"completed\":%" PRIu64
          ",\"rejected_queue_full\":%" PRIu64 ",\"deadline_expired\":%" PRIu64
          ",\"invalid\":%" PRIu64 ",\"aborted\":%" PRIu64
          ",\"pairwise\":%" PRIu64 ",\"search\":%" PRIu64
          ",\"batch\":%" PRIu64 ",\"cells\":%" PRIu64
          ",\"slow_requests\":%" PRIu64 ",\"uptime_s\":%.3f}",
          s.submitted, s.completed, s.rejected_queue_full, s.deadline_expired,
          s.invalid_request, s.aborted, s.pairwise, s.search, s.batch,
          s.cells, s.slow_requests, s.uptime_seconds);
  }

  if (g_rec.sink != nullptr) {
    emitf(fd,
          ",\"trace_accounting\":{\"recorded\":%" PRIu64
          ",\"dropped_wrap\":%" PRIu64 ",\"dropped_torn\":%" PRIu64
          ",\"dropped_overflow\":%" PRIu64 "}",
          g_rec.sink->recorded(), g_rec.sink->wrap_dropped(),
          g_rec.sink->torn_skipped(), g_rec.sink->overflow_dropped());
  }

  emit(fd, ",\"inflight\":[");
  if (g_rec.inflight != nullptr) {
    constexpr size_t kMax = 256;
    InFlightTable::Entry entries[kMax];
    const size_t n = g_rec.inflight->snapshot(entries, kMax);
    const uint64_t now = steady_now_ns();
    for (size_t i = 0; i < n; ++i) {
      const InFlightTable::Entry& e = entries[i];
      const uint64_t run = now > e.start_ns ? now - e.start_ns : 0;
      emitf(fd,
            "%s{\"slot\":%u,\"id\":%" PRIu64
            ",\"scenario\":\"%s\",\"running_s\":%.3f,\"past_deadline\":%s}",
            i > 0 ? "," : "", e.slot, e.id, scenario_label(e.scenario),
            static_cast<double>(run) * 1e-9,
            (e.deadline_ns != 0 && now > e.deadline_ns) ? "true" : "false");
    }
  }
  emit(fd, "]");

  if (g_rec.sink != nullptr) {
    emit(fd, ",\"trace\":");
    g_rec.sink->write_chrome_trace(fd);
  }

  emit(fd, "}\n");
  ::close(fd);
  return true;
}

void flush_trace_out() noexcept {
  if (g_rec.trace_out[0] == '\0' || g_rec.sink == nullptr) return;
  const int fd = ::open(g_rec.trace_out, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  g_rec.sink->write_chrome_trace(fd);
  ::close(fd);
}

void handler(int sig) {
  int expected = 0;
  if (g_rec.dumping.compare_exchange_strong(expected, 1)) {
    write_dump(signal_name(sig), sig);
    flush_trace_out();
    // Last-gasp structured line, bypassing the async logger's ring (its
    // flusher thread may never run again); write_fatal_line is
    // async-signal-safe by design. Termination signals are not last
    // gasps — the drain path keeps logging normally.
    if (sig != SIGTERM && sig != SIGINT)
      if (Logger* log = Logger::global())
        log->write_fatal_line("fatal.signal", signal_name(sig));
    emitf(STDERR_FILENO, "swve: %s — flight recorder dump written to %s\n",
          signal_name(sig), g_rec.path[0] != '\0' ? g_rec.path : "(nowhere)");
  }
  if (sig == SIGTERM || sig == SIGINT) {
    if (g_rec.notify_fd >= 0) {
      // Wake the owner's event loop (eventfd/pipe write is signal-safe).
      const uint64_t one = 1;
      write_all(g_rec.notify_fd, reinterpret_cast<const char*>(&one),
                sizeof one);
    }
    if (g_rec.exit_on_term) ::_exit(128 + sig);
    return;  // owner-controlled drain; keep running
  }
  // Fatal signal: restore the previous disposition and re-raise so the
  // exit status and any core dump are exactly what they would have been.
  for (int i = 0; i < g_rec.nsigs; ++i) {
    if (g_rec.sigs[i] == sig) {
      sigaction(sig, &g_rec.old_act[i], nullptr);
      raise(sig);
      return;
    }
  }
  signal(sig, SIG_DFL);
  raise(sig);
}

void copy_path(char* dst, size_t cap, const std::string& src) noexcept {
  const size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

FlightRecorder::~FlightRecorder() { uninstall(); }

bool FlightRecorder::install(const FlightRecorderOptions& options) {
  bool expected = false;
  if (!g_rec.installed.compare_exchange_strong(expected, true)) return false;

  copy_path(g_rec.path, sizeof g_rec.path, options.path);
  copy_path(g_rec.trace_out, sizeof g_rec.trace_out, options.trace_out);
  g_rec.sink = options.sink;
  g_rec.registry = options.registry;
  g_rec.inflight = options.inflight;
  g_rec.notify_fd = options.notify_fd;
  g_rec.exit_on_term = options.exit_on_term;
  g_rec.dumping.store(0);
  g_rec.nsigs = 0;

  const auto hook = [&](int sig) {
    struct sigaction act {};
    act.sa_handler = handler;
    sigemptyset(&act.sa_mask);
    act.sa_flags = 0;
    if (g_rec.nsigs < Global::kMaxSigs &&
        sigaction(sig, &act, &g_rec.old_act[g_rec.nsigs]) == 0)
      g_rec.sigs[g_rec.nsigs++] = sig;
  };
  if (options.handle_fatal) {
    hook(SIGSEGV);
    hook(SIGABRT);
    hook(SIGBUS);
  }
  if (options.handle_term) {
    hook(SIGTERM);
    hook(SIGINT);
  }
  installed_ = true;
  return true;
}

void FlightRecorder::uninstall() {
  if (!installed_) return;
  for (int i = 0; i < g_rec.nsigs; ++i)
    sigaction(g_rec.sigs[i], &g_rec.old_act[i], nullptr);
  g_rec.nsigs = 0;
  g_rec.sink = nullptr;
  g_rec.registry = nullptr;
  g_rec.inflight = nullptr;
  g_rec.notify_fd = -1;
  g_rec.exit_on_term = true;
  installed_ = false;
  g_rec.installed.store(false);
}

bool FlightRecorder::dump_now(const char* reason) const {
  if (!installed_) return false;
  return write_dump(reason != nullptr ? reason : "manual", 0);
}

#else  // !unix

FlightRecorder::~FlightRecorder() = default;
bool FlightRecorder::install(const FlightRecorderOptions&) { return false; }
void FlightRecorder::uninstall() {}
bool FlightRecorder::dump_now(const char*) const { return false; }

#endif

}  // namespace swve::obs
