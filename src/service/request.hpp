// Request/response vocabulary of the AlignService front door.
//
// Requests own their sequences (they outlive the submitting scope — the
// service executes them asynchronously) and carry per-call overrides:
// config, top-k, traceback, and a relative deadline. Responses carry the
// scenario result plus a RequestTrace — the per-request observability
// record (queue wait, kernel time, widths retried, delivery mode chosen,
// saturation retries) fed from the existing KernelStats plumbing.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "align/batch_server.hpp"
#include "align/db_search.hpp"
#include "core/error.hpp"
#include "core/params.hpp"
#include "core/result.hpp"
#include "perf/topdown.hpp"
#include "seq/sequence.hpp"
#include "service/status.hpp"

namespace swve::service {

/// Error carried by a failed future on the legacy submit() path. The code
/// is a core::ConfigError::Code so validation failures, backpressure, and
/// deadline expiry are all distinguishable programmatically. New code
/// should prefer the submit_async() overloads, which deliver the same
/// information as a core::ErrorOr without exceptions (see status()).
class ServiceError : public std::runtime_error {
 public:
  using Code = core::ConfigError::Code;
  ServiceError(Code code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  explicit ServiceError(const core::ConfigError& err)
      : ServiceError(err.code, err.message) {}
  Code code() const noexcept { return code_; }
  /// The service-boundary status this failure crosses the wire as.
  ServiceStatus status() const noexcept { return to_status(code_); }

 private:
  Code code_;
};

/// Priority tier of a request. Executors always drain Interactive before
/// Standard before Bulk (FIFO within a tier), so latency-sensitive traffic
/// overtakes throughput traffic at every dequeue — the QoS half of the
/// existing deadline + backpressure support. Values are the protocol v1
/// tier byte; append-only.
enum class QosTier : uint8_t {
  Interactive = 0,  ///< user-facing, latency-sensitive
  Standard = 1,     ///< default
  Bulk = 2,         ///< offline / best-effort (batch reprocessing)
};
inline constexpr int kQosTiers = 3;

constexpr const char* qos_tier_name(QosTier t) noexcept {
  switch (t) {
    case QosTier::Interactive: return "interactive";
    case QosTier::Standard: return "standard";
    case QosTier::Bulk: return "bulk";
  }
  return "unknown";
}

/// Clamp a wire tier byte to a valid QosTier (unknown tiers serve as Bulk
/// rather than being rejected — forward compatibility for new tiers).
constexpr QosTier qos_tier_from_wire(uint8_t b) noexcept {
  return b < kQosTiers ? static_cast<QosTier>(b) : QosTier::Bulk;
}

/// Per-call overrides; unset fields fall back to the service defaults.
struct RequestOptions {
  /// Replace the service's AlignConfig wholesale for this request
  /// (validated with try_validate(); a bad config fails the request).
  std::optional<core::AlignConfig> config;
  /// Hits to keep per query (search/batch; service default otherwise).
  std::optional<size_t> top_k;
  /// Request a traceback (pairwise only; search/batch score without it).
  std::optional<bool> traceback;
  /// Relative deadline, measured from submit. The request fails with
  /// DeadlineExceeded if it is still queued — or still running, at
  /// sequence-chunk granularity — when the deadline passes.
  std::optional<std::chrono::steady_clock::duration> deadline;
  /// Priority tier; executors dequeue lower tiers first (FIFO within one).
  QosTier tier = QosTier::Standard;
  /// Caller-supplied trace id for span attribution (0 = let the service
  /// allocate one). Propagated by net::Server from a kFlagTraced frame's
  /// WireTraceContext. Like deadline and tier, this is excluded from the
  /// result-cache identity: it shapes observability, not results.
  uint64_t trace_id = 0;
};

/// Scenario 3 (pairwise, SW-as-a-subroutine).
struct AlignRequest {
  seq::Sequence query;
  seq::Sequence reference;
  RequestOptions options;
};

/// Scenario 1 (one query vs the service database).
struct SearchRequest {
  seq::Sequence query;
  align::SearchMode mode = align::SearchMode::Diagonal;
  RequestOptions options;
};

/// Scenario 2 (query batch vs the service database).
struct BatchRequest {
  std::vector<seq::Sequence> queries;
  RequestOptions options;
};

enum class Scenario : uint8_t { Pairwise = 0, Search = 1, Batch = 2 };

/// Per-request observability record attached to every response.
struct RequestTrace {
  Scenario scenario = Scenario::Pairwise;
  /// Monotone per-service sequence number stamped when execution starts
  /// (exposes completion order for tests and tracing).
  uint64_t exec_sequence = 0;
  double queue_wait_s = 0;  ///< submit -> execution start
  double kernel_s = 0;      ///< execution (kernel + merge) time
  uint64_t cells = 0;       ///< DP cells computed (from KernelStats)

  simd::Isa isa = simd::Isa::Scalar;          ///< resolved ISA
  core::ScoreDelivery delivery = core::ScoreDelivery::Auto;  ///< path chosen
  core::Width width_used = core::Width::W8;   ///< pairwise: final rung
  /// Adaptive-ladder retries: pairwise counts 8->16/16->32 re-runs; the
  /// batch paths count lanes re-scored after 8-bit saturation.
  uint64_t saturation_retries = 0;

  /// Id keying this request's spans in the exported Chrome trace (0 when
  /// the service has no TraceSink installed).
  uint64_t trace_id = 0;
  /// Top-down pipeline-slot breakdown; filled for one-in-N sampled requests
  /// when ServiceOptions::topdown_every_n is enabled.
  std::optional<perf::TopDownResult> topdown;

  double gcups() const noexcept {
    return kernel_s > 0 ? static_cast<double>(cells) / kernel_s / 1e9 : 0.0;
  }
};

struct AlignResponse {
  core::Alignment alignment;
  RequestTrace trace;
};

struct SearchResponse {
  align::SearchResult result;
  RequestTrace trace;
};

struct BatchResponse {
  std::vector<align::BatchQueryResult> results;
  RequestTrace trace;
};

/// Completion callbacks of the non-throwing submit_async() API: exactly one
/// invocation per submission, with either the response or a ConfigError
/// (convert with to_status() for the wire). Immediate rejections — queue
/// full under Overflow::Reject, shutdown — run the callback inline on the
/// submitting thread; everything else runs it on an executor thread.
template <typename Response>
using Completion = std::function<void(core::ErrorOr<Response>)>;
using AlignCompletion = Completion<AlignResponse>;
using SearchCompletion = Completion<SearchResponse>;
using BatchCompletion = Completion<BatchResponse>;

}  // namespace swve::service
