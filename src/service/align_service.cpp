#include "service/align_service.hpp"

#include <utility>

#include "core/dispatch.hpp"
#include "obs/log.hpp"
#include "perf/freq_monitor.hpp"
#include "perf/timer.hpp"

namespace swve::service {

namespace {

using Clock = std::chrono::steady_clock;
using Code = core::ConfigError::Code;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// A steady_clock time_point on the obs::steady_now_ns() scale (both are
/// steady_clock nanoseconds since the same epoch); 0 for the null deadline.
uint64_t deadline_to_ns(Clock::time_point deadline) {
  const auto since = deadline.time_since_epoch();
  if (since.count() == 0) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(since).count());
}

/// Future shim plumbing: turn a Completion failure back into the legacy
/// ServiceError-throwing future.
template <typename R>
void fulfil_promise(const std::shared_ptr<std::promise<R>>& prom,
                    core::ErrorOr<R> out) {
  if (out.ok())
    prom->set_value(std::move(out).value());
  else
    prom->set_exception(
        std::make_exception_ptr(ServiceError(out.error())));
}

/// Delivery path the kernel will actually use under `cfg` at `isa`.
core::ScoreDelivery effective_delivery(const core::AlignConfig& cfg,
                                       simd::Isa isa) {
  if (cfg.scheme != core::ScoreScheme::Matrix) return cfg.delivery;
  return cfg.delivery == core::ScoreDelivery::Auto
             ? core::resolved_delivery(isa)
             : cfg.delivery;
}

uint16_t dp_width_bits(core::Width w) {
  switch (w) {
    case core::Width::W8: return 8;
    case core::Width::W16: return 16;
    case core::Width::W32: return 32;
    case core::Width::Adaptive: return 0;
  }
  return 0;
}

}  // namespace

AlignService::AlignService(ServiceOptions options)
    : AlignService(InitTag{}, std::move(options)) {
  start_telemetry();
}

AlignService::AlignService(InitTag, ServiceOptions options)
    : opt_(options), pool_(options.pool_threads),
      paused_(options.queue.start_paused) {
  // Pre-group behavior: zero executors/capacity were clamped, not
  // rejected, so keep clamping before the structural validation.
  if (opt_.queue.executors == 0) opt_.queue.executors = 1;
  if (opt_.queue.capacity == 0) opt_.queue.capacity = 1;
  if (auto st = opt_.try_validate(); !st)
    throw std::invalid_argument(st.error().message);
  if (!opt_.cache.query_cache_bypass && opt_.cache.query_cache_capacity > 0)
    query_cache_ = std::make_unique<align::QueryStateCache>(
        opt_.cache.query_cache_capacity);
  inflight_ = std::make_unique<obs::InFlightTable>(opt_.queue.executors);
  if (opt_.obs.slow_request_slo_s > 0) {
    obs::WatchdogOptions wo;
    wo.slo_s = opt_.obs.slow_request_slo_s;
    wo.period_s = opt_.obs.watchdog_period_s;
    watchdog_ = std::make_unique<obs::Watchdog>(
        *inflight_, wo, opt_.obs.trace_sink, &metrics_,
        [this] { return queue_depth(); });
  }
  executors_.reserve(opt_.queue.executors);
  for (unsigned e = 0; e < opt_.queue.executors; ++e)
    executors_.emplace_back([this, e] { executor_loop(e); });
}

void AlignService::start_telemetry() {
  // Telemetry history: the store and SLO engine ride the sampler tick.
  // An explicit obs.sampler_period_s wins as the cadence; otherwise the
  // serve.telemetry_cadence_s default turns the sampler on.
  const double cadence = opt_.obs.sampler_period_s > 0
                             ? opt_.obs.sampler_period_s
                             : opt_.serve.telemetry_cadence_s;
  if (opt_.serve.telemetry_cadence_s > 0) {
    obs::TimeSeriesOptions to;
    to.cadence_s = cadence;
    to.capacity = std::max<size_t>(
        1, static_cast<size_t>(opt_.serve.telemetry_retention_s / cadence));
    timeseries_ = std::make_unique<obs::TimeSeriesStore>(to);
    if (opt_.obs.slo.enabled())
      slo_ = std::make_unique<obs::SloEngine>(opt_.obs.slo, timeseries_.get());
  }
  if (cadence > 0) {
    obs::SamplerOptions so;
    so.period_s = cadence;
    so.freq_probe_ms = opt_.obs.sampler_freq_probe_ms;
    so.on_sample = [this](double t_s, const perf::MetricsSnapshot& snap) {
      if (timeseries_) timeseries_->push(snap, t_s, queue_depth());
      if (slo_) slo_->evaluate(t_s);
    };
    sampler_ = std::make_unique<obs::Sampler>(so, [this] { return metrics(); });
  }
}

AlignService::AlignService(const seq::SequenceDatabase& db,
                           ServiceOptions options)
    : AlignService(InitTag{}, std::move(options)) {
  db_ = &db;
  // Pack once, up front, before any request can arrive (executors are
  // already running but the queue is still empty while we're here only if
  // the caller hasn't submitted yet — which it can't: it has no handle).
  perf::Stopwatch sw;
  bdb_ = std::make_unique<core::Batch32Db>(
      db, align::engine::batch_server_lanes(), opt_.cache.batch_packing);
  packed_ = bdb_.get();
  db_source_ = core::DbSource::Built;
  db_load_seconds_ = sw.seconds();
  // db_epoch_ stays 0: fingerprinting the content here would be an O(n)
  // walk on every construction; callers that need it (net::Server) compute
  // it once themselves.
  init_sharding();
  start_telemetry();
}

void AlignService::init_sharding() {
  if (opt_.search.shards == 1 || packed_ == nullptr) return;
  align::ShardOptions so;
  so.shards = opt_.search.shards;
  so.numa = opt_.search.numa;
  so.total_threads = opt_.pool_threads;
  so.mapped = mapped_;
  auto sh = align::ShardedSearch::create(*db_, *packed_, so);
  if (!sh.ok()) throw std::invalid_argument(sh.error().message);
  sharded_ = std::move(sh).value();
  // Auto on a single-node host resolves to one shard: keep the flat pool
  // (identical results, one less indirection) and report unsharded.
  if (opt_.search.shards == 0 && sharded_->shard_count() <= 1)
    sharded_.reset();
}

AlignService::AlignService(const core::MappedDb& mapped, ServiceOptions options)
    : AlignService(InitTag{}, std::move(options)) {
  db_ = &mapped.db();
  packed_ = &mapped.batch_db();
  mapped_ = &mapped;
  db_source_ = mapped.source();
  db_epoch_ = mapped.epoch();
  db_load_seconds_ = mapped.load_seconds();
  init_sharding();
  start_telemetry();
}

AlignService::~AlignService() {
  sampler_.reset();   // stop the sampler before tearing down what it reads
  watchdog_.reset();  // likewise the watchdog (it scans the in-flight table)
  std::array<std::deque<Task>, kQosTiers> leftover;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    for (int t = 0; t < kQosTiers; ++t) leftover[t].swap(queues_[t]);
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& t : executors_) t.join();
  for (auto& tier : leftover)
    for (auto& t : tier) t.run(/*aborted=*/true);
}

perf::MetricsSnapshot AlignService::metrics() const {
  perf::MetricsSnapshot s = metrics_.snapshot();
  if (opt_.obs.pmu_attribution)
    s.pmu_unavailable = obs::PmuSession::instance().available() ? 0 : 1;
  if (obs::TraceSink* sink = opt_.obs.trace_sink; sink != nullptr) {
    s.trace_recorded = sink->recorded();
    s.trace_dropped_wrap = sink->wrap_dropped();
    s.trace_dropped_torn = sink->torn_skipped();
    s.trace_dropped_overflow = sink->overflow_dropped();
  }
  if (obs::Logger* logger = obs::Logger::global(); logger != nullptr) {
    s.log_records = logger->emitted();
    s.log_dropped_overflow = logger->dropped_overflow();
    s.log_dropped_threads = logger->dropped_threads();
    s.log_suppressed = logger->suppressed();
  }
  const parallel::PoolStats ps = pool_.stats();
  s.pool_threads = ps.threads;
  s.pool_jobs = ps.jobs;
  s.pool_busy_seconds = ps.busy_seconds;
  if (query_cache_) {
    const align::QueryCacheStats qs = query_cache_->stats();
    s.query_cache_hits = qs.hits;
    s.query_cache_misses = qs.misses;
    s.query_cache_evictions = qs.evictions;
    s.workspace_reuses = qs.ws_reuses;
    s.workspace_creates = qs.ws_creates;
    s.query_cache_entries = qs.entries;
  }
  if (sharded_) {
    const size_t n = std::min<size_t>(sharded_->shard_count(),
                                      perf::MetricsSnapshot::kMaxShards);
    s.shard_count = static_cast<uint32_t>(n);
    for (size_t i = 0; i < n; ++i) {
      const align::ShardStats st = sharded_->shard_stats(i);
      auto& out = s.shards[i];
      out.searches = st.searches;
      out.batches = st.batches;
      out.cells = st.cells;
      out.useful_cells = st.useful_cells;
      out.busy_seconds = st.busy_seconds;
      out.llc_misses = st.llc_misses;
      out.cycles = st.cycles;
      out.queue_depth = st.queue_depth;
      out.sequences = st.sequences;
      out.node = st.node;
      out.threads = st.threads;
      out.bound = st.bound ? 1 : 0;
    }
  }
  if (db_ != nullptr) {
    s.db_source = static_cast<uint64_t>(db_source_);
    s.db_load_seconds = db_load_seconds_;
    s.db_epoch = db_epoch_;
    if (mapped_ != nullptr) {
      s.db_map_bytes = mapped_->mapped_bytes();
      s.db_resident_bytes = mapped_->resident_bytes();
    }
  }
  return s;
}

std::string AlignService::dump_metrics(obs::MetricsFormat format) const {
  return obs::render_metrics(metrics(), format);
}

std::vector<obs::Sample> AlignService::samples() const {
  return sampler_ ? sampler_->samples() : std::vector<obs::Sample>{};
}

double AlignService::model_ghz() {
  double g = model_ghz_.load(std::memory_order_relaxed);
  if (g == 0) {
    g = perf::measure_frequency(10.0).ghz;
    model_ghz_.store(g, std::memory_order_relaxed);
  }
  return g;
}

std::optional<perf::TopDownResult> AlignService::maybe_topdown(
    const std::function<void()>& work, uint64_t est_cells) {
  if (opt_.obs.topdown_every_n == 0 ||
      topdown_seq_.fetch_add(1, std::memory_order_relaxed) %
              opt_.obs.topdown_every_n !=
          0) {
    work();
    return std::nullopt;
  }
  perf::ModelInputs model;
  // ~1 retired instruction per DP cell and one byte of DP state touched per
  // 8 cells — order-of-magnitude estimates for the analytical fallback; the
  // hardware-counter path ignores them.
  model.instructions = est_cells > 0 ? est_cells : 1;
  model.mem_bytes = est_cells / 8 + 1;
  model.ghz = model_ghz();
  return perf::topdown_analyze(work, model);
}

size_t AlignService::queued_locked() const {
  size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

AlignService::Task AlignService::pop_locked() {
  for (auto& q : queues_) {
    if (!q.empty()) {
      Task t = std::move(q.front());
      q.pop_front();
      return t;
    }
  }
  return {};  // unreachable under the documented precondition
}

size_t AlignService::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queued_locked();
}

void AlignService::pause() {
  std::lock_guard<std::mutex> lk(mu_);
  paused_ = true;
}

void AlignService::resume() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void AlignService::executor_loop(unsigned index) {
  for (;;) {
    Task t;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(
          lk, [&] { return stop_ || (!paused_ && queued_locked() > 0); });
      if (stop_) return;
      t = pop_locked();
    }
    space_cv_.notify_one();
    // Occupy this executor's in-flight slot for the run — the watchdog's
    // and flight recorder's view of "what is executing right now".
    obs::InFlightTable::Guard guard(*inflight_, index, t.id, t.scenario,
                                    t.deadline_ns);
    if (opt_.before_execute_hook) opt_.before_execute_hook();
    t.run(/*aborted=*/false);
  }
}

obs::TraceContext AlignService::trace_context(uint64_t trace_id) noexcept {
  obs::TraceContext t;
  t.sink = opt_.obs.trace_sink;
  t.trace_id = trace_id;
  if (opt_.obs.pmu_attribution) {
    t.pmu = &obs::PmuSession::instance();
    t.registry = &metrics_;
  }
  return t;
}

uint64_t AlignService::next_request_id() noexcept {
  return opt_.obs.trace_sink != nullptr
             ? opt_.obs.trace_sink->next_trace_id()
             : request_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
}

bool AlignService::enqueue(
    Task task, const std::function<void(core::ConfigError)>& reject) {
  std::unique_lock<std::mutex> lk(mu_);
  if (opt_.queue.overflow == QueueOptions::Overflow::Block) {
    space_cv_.wait(lk, [&] {
      return stop_ || queued_locked() < opt_.queue.capacity;
    });
  }
  if (stop_) {
    lk.unlock();
    metrics_.on_aborted();
    obs::log_warn("service.reject",
                  {{"reason", "shutting_down"}, {"request_id", task.id}});
    reject(core::ConfigError{Code::ShuttingDown,
                             "AlignService: shutting down"});
    return false;
  }
  if (queued_locked() >= opt_.queue.capacity) {
    lk.unlock();
    metrics_.on_rejected_queue_full();
    obs::log_warn("service.reject",
                  {{"reason", "queue_full"},
                   {"request_id", task.id},
                   {"capacity", opt_.queue.capacity}});
    reject(core::ConfigError{
        Code::QueueFull, "AlignService: submission queue at capacity (" +
                             std::to_string(opt_.queue.capacity) + ")"});
    return false;
  }
  queues_[static_cast<size_t>(task.tier)].push_back(std::move(task));
  metrics_.on_submitted();
  lk.unlock();
  work_cv_.notify_one();
  return true;
}

core::ErrorOr<core::AlignConfig> AlignService::effective_config(
    const RequestOptions& options) const {
  core::AlignConfig cfg = options.config ? *options.config : opt_.config;
  if (auto st = cfg.try_validate(); !st) return st.error();
  return cfg;
}

RequestTrace AlignService::make_trace(Scenario scenario,
                                      const core::AlignConfig& cfg,
                                      double queue_wait_s, double kernel_s,
                                      uint64_t cells, uint64_t retries) const {
  RequestTrace tr;
  tr.scenario = scenario;
  tr.queue_wait_s = queue_wait_s;
  tr.kernel_s = kernel_s;
  tr.cells = cells;
  tr.saturation_retries = retries;
  tr.isa = simd::resolve_isa(cfg.isa);
  tr.delivery = effective_delivery(cfg, tr.isa);
  return tr;
}

void AlignService::submit_async(AlignRequest request, AlignCompletion done) {
  auto cb = std::make_shared<AlignCompletion>(std::move(done));
  auto rq = std::make_shared<AlignRequest>(std::move(request));
  metrics_.on_query_length(rq->query.length());
  const Clock::time_point submitted = Clock::now();
  const Clock::time_point deadline =
      rq->options.deadline ? submitted + *rq->options.deadline
                           : Clock::time_point{};
  obs::TraceSink* const sink = opt_.obs.trace_sink;
  // A caller-propagated trace id (wire tracing) wins over a local one so
  // client and server spans share a single id end to end.
  const uint64_t trace_id =
      rq->options.trace_id != 0 ? rq->options.trace_id : next_request_id();
  const uint64_t t_sub_ns = sink ? sink->now_ns() : 0;

  Task task;
  task.run = [this, cb, rq, submitted, deadline, sink, trace_id,
              t_sub_ns](bool aborted) {
    if (aborted) {
      (*cb)(core::ConfigError{Code::ShuttingDown,
                              "AlignService: shut down before run"});
      return;
    }
    const obs::TraceContext tctx = trace_context(trace_id);
    if (sink) sink->record_span("queue_wait", trace_id, t_sub_ns, sink->now_ns());
    const double qwait = seconds_since(submitted);
    metrics_.on_queue_wait(qwait);
    if (deadline.time_since_epoch().count() != 0 && Clock::now() >= deadline) {
      metrics_.on_deadline_expired();
      obs::log_warn("service.deadline_expired",
                    {{"trace_id", trace_id},
                     {"where", "queue"},
                     {"queue_wait_s", qwait}});
      (*cb)(core::ConfigError{Code::DeadlineExceeded,
                              "AlignService: deadline expired in queue"});
      return;
    }
    auto cfg_or = effective_config(rq->options);
    if (!cfg_or) {
      metrics_.on_invalid_request();
      obs::log_warn("service.invalid_request",
                    {{"trace_id", trace_id},
                     {"message", cfg_or.error().message}});
      (*cb)(cfg_or.error());
      return;
    }
    core::AlignConfig cfg = *cfg_or;
    if (rq->options.traceback) cfg.traceback = *rq->options.traceback;

    obs::Span dispatch(tctx, "dispatch.pairwise");
    const uint64_t est_cells = static_cast<uint64_t>(rq->query.length()) *
                               rq->reference.length();
    perf::Stopwatch sw;
    core::Alignment a;
    std::optional<perf::TopDownResult> td;
    try {
      td = maybe_topdown(
          [&] {
            thread_local core::Workspace ws;  // one per executor thread
            std::shared_ptr<const core::PreparedQuery> prep;
            if (query_cache_) prep = query_cache_->prepared(rq->query, cfg);
            obs::Span chunk(tctx, "chunk.pairwise");
            chunk.set_kernel(perf::KernelVariant::Diagonal);
            a = core::diag_align(rq->query, rq->reference, cfg, ws,
                                 prep.get());
            chunk.set_isa(a.isa_used);
            chunk.set_width_bits(dp_width_bits(a.width_used));
            chunk.add_cells(a.stats.cells);
          },
          est_cells);
    } catch (const std::exception& e) {
      metrics_.on_invalid_request();
      (*cb)(core::ConfigError{Code::Internal, e.what()});
      return;
    }
    const double kernel_s = sw.seconds();
    const uint64_t retries =
        static_cast<uint64_t>(a.saturated_8) + static_cast<uint64_t>(a.saturated_16);
    RequestTrace tr = make_trace(Scenario::Pairwise, cfg, qwait, kernel_s,
                                 a.stats.cells, retries);
    tr.exec_sequence = exec_sequence_.fetch_add(1, std::memory_order_relaxed);
    tr.isa = a.isa_used;
    tr.width_used = a.width_used;
    tr.trace_id = sink != nullptr ? trace_id : 0;
    tr.topdown = std::move(td);
    metrics_.on_completed(perf::MetricsRegistry::Scenario::Pairwise, kernel_s,
                          a.stats.cells);
    metrics_.on_tier_completed(static_cast<unsigned>(rq->options.tier),
                               perf::MetricsRegistry::Scenario::Pairwise,
                               qwait + kernel_s);
    metrics_.on_kernel_completed(a.isa_used, perf::KernelVariant::Diagonal,
                                 a.stats.cells);
    dispatch.end();
    (*cb)(AlignResponse{std::move(a), tr});
  };
  task.id = trace_id;
  task.scenario = obs::Scenario::Pairwise;
  task.deadline_ns = deadline_to_ns(deadline);
  task.tier = rq->options.tier;
  enqueue(std::move(task), [&cb](core::ConfigError e) { (*cb)(std::move(e)); });
}

std::future<AlignResponse> AlignService::submit(AlignRequest request) {
  auto prom = std::make_shared<std::promise<AlignResponse>>();
  std::future<AlignResponse> fut = prom->get_future();
  submit_async(std::move(request), [prom](core::ErrorOr<AlignResponse> out) {
    fulfil_promise(prom, std::move(out));
  });
  return fut;
}

void AlignService::submit_async(SearchRequest request, SearchCompletion done) {
  auto cb = std::make_shared<SearchCompletion>(std::move(done));
  auto rq = std::make_shared<SearchRequest>(std::move(request));
  metrics_.on_query_length(rq->query.length());
  const Clock::time_point submitted = Clock::now();
  const Clock::time_point deadline =
      rq->options.deadline ? submitted + *rq->options.deadline
                           : Clock::time_point{};
  obs::TraceSink* const sink = opt_.obs.trace_sink;
  // A caller-propagated trace id (wire tracing) wins over a local one so
  // client and server spans share a single id end to end.
  const uint64_t trace_id =
      rq->options.trace_id != 0 ? rq->options.trace_id : next_request_id();
  const uint64_t t_sub_ns = sink ? sink->now_ns() : 0;

  Task task;
  task.run = [this, cb, rq, submitted, deadline, sink, trace_id,
              t_sub_ns](bool aborted) {
    if (aborted) {
      (*cb)(core::ConfigError{Code::ShuttingDown,
                              "AlignService: shut down before run"});
      return;
    }
    const obs::TraceContext tctx = trace_context(trace_id);
    if (sink) sink->record_span("queue_wait", trace_id, t_sub_ns, sink->now_ns());
    const double qwait = seconds_since(submitted);
    metrics_.on_queue_wait(qwait);
    if (deadline.time_since_epoch().count() != 0 && Clock::now() >= deadline) {
      metrics_.on_deadline_expired();
      obs::log_warn("service.deadline_expired",
                    {{"trace_id", trace_id},
                     {"where", "queue"},
                     {"queue_wait_s", qwait}});
      (*cb)(core::ConfigError{Code::DeadlineExceeded,
                              "AlignService: deadline expired in queue"});
      return;
    }
    if (!db_) {
      metrics_.on_invalid_request();
      (*cb)(core::ConfigError{Code::NoDatabase,
                              "AlignService: no database attached"});
      return;
    }
    auto cfg_or = effective_config(rq->options);
    if (!cfg_or) {
      metrics_.on_invalid_request();
      obs::log_warn("service.invalid_request",
                    {{"trace_id", trace_id},
                     {"message", cfg_or.error().message}});
      (*cb)(cfg_or.error());
      return;
    }
    core::AlignConfig cfg = *cfg_or;
    cfg.traceback = false;  // scoring pass, like DatabaseSearch
    if (rq->mode == align::SearchMode::Batch && cfg.band >= 0) {
      metrics_.on_invalid_request();
      (*cb)(core::ConfigError{Code::Unsupported,
                              "AlignService: Batch search cannot band"});
      return;
    }
    const size_t top_k = rq->options.top_k.value_or(opt_.default_top_k);

    align::ExecContext ctx;
    ctx.pool = &pool_;
    ctx.query_cache = query_cache_.get();
    ctx.deadline = deadline;
    ctx.trace = tctx;
    obs::Span dispatch(tctx, "dispatch.search");
    const uint64_t est_cells =
        static_cast<uint64_t>(rq->query.length()) * db_->total_residues();
    align::SearchResult res;
    std::optional<perf::TopDownResult> td;
    {
      std::lock_guard<std::mutex> pool_lk(pool_mu_);
      td = maybe_topdown(
          [&] {
            // Batch searches route through the sharded engine when one was
            // built (search.shards != 1) — per-NUMA-node pools, bounded
            // per-shard heaps, bit-identical merged top-k.
            if (rq->mode == align::SearchMode::Batch)
              res = sharded_ != nullptr
                        ? sharded_->search(cfg, rq->query, top_k, ctx)
                        : align::engine::search_batch(*db_, *packed_, cfg,
                                                      rq->query, top_k, ctx);
            else
              res = align::engine::search_diagonal(*db_, cfg, rq->query,
                                                   top_k, ctx);
          },
          est_cells);
    }
    if (res.truncated) {
      metrics_.on_deadline_expired();
      obs::log_warn("service.deadline_expired",
                    {{"trace_id", trace_id}, {"where", "mid_search"}});
      (*cb)(core::ConfigError{Code::DeadlineExceeded,
                              "AlignService: deadline expired mid-search"});
      return;
    }
    RequestTrace tr = make_trace(Scenario::Search, cfg, qwait, res.seconds,
                                 res.stats.cells, 0);
    tr.exec_sequence = exec_sequence_.fetch_add(1, std::memory_order_relaxed);
    tr.trace_id = sink != nullptr ? trace_id : 0;
    tr.topdown = std::move(td);
    metrics_.on_completed(perf::MetricsRegistry::Scenario::Search, res.seconds,
                          res.stats.cells);
    metrics_.on_tier_completed(static_cast<unsigned>(rq->options.tier),
                               perf::MetricsRegistry::Scenario::Search,
                               qwait + res.seconds);
    if (res.batch_stats.cells8 > 0)
      metrics_.on_batch_packing(res.batch_stats.cells8,
                                res.batch_stats.useful_cells8);
    metrics_.on_kernel_completed(tr.isa,
                                 rq->mode == align::SearchMode::Batch
                                     ? perf::KernelVariant::Batch32
                                     : perf::KernelVariant::Diagonal,
                                 res.stats.cells);
    dispatch.end();
    (*cb)(SearchResponse{std::move(res), tr});
  };
  task.id = trace_id;
  task.scenario = obs::Scenario::Search;
  task.deadline_ns = deadline_to_ns(deadline);
  task.tier = rq->options.tier;
  enqueue(std::move(task), [&cb](core::ConfigError e) { (*cb)(std::move(e)); });
}

std::future<SearchResponse> AlignService::submit_search(SearchRequest request) {
  auto prom = std::make_shared<std::promise<SearchResponse>>();
  std::future<SearchResponse> fut = prom->get_future();
  submit_async(std::move(request), [prom](core::ErrorOr<SearchResponse> out) {
    fulfil_promise(prom, std::move(out));
  });
  return fut;
}

void AlignService::submit_async(BatchRequest request, BatchCompletion done) {
  auto cb = std::make_shared<BatchCompletion>(std::move(done));
  auto rq = std::make_shared<BatchRequest>(std::move(request));
  for (const auto& q : rq->queries) metrics_.on_query_length(q.length());
  const Clock::time_point submitted = Clock::now();
  const Clock::time_point deadline =
      rq->options.deadline ? submitted + *rq->options.deadline
                           : Clock::time_point{};
  obs::TraceSink* const sink = opt_.obs.trace_sink;
  // A caller-propagated trace id (wire tracing) wins over a local one so
  // client and server spans share a single id end to end.
  const uint64_t trace_id =
      rq->options.trace_id != 0 ? rq->options.trace_id : next_request_id();
  const uint64_t t_sub_ns = sink ? sink->now_ns() : 0;

  Task task;
  task.run = [this, cb, rq, submitted, deadline, sink, trace_id,
              t_sub_ns](bool aborted) {
    if (aborted) {
      (*cb)(core::ConfigError{Code::ShuttingDown,
                              "AlignService: shut down before run"});
      return;
    }
    const obs::TraceContext tctx = trace_context(trace_id);
    if (sink) sink->record_span("queue_wait", trace_id, t_sub_ns, sink->now_ns());
    const double qwait = seconds_since(submitted);
    metrics_.on_queue_wait(qwait);
    if (deadline.time_since_epoch().count() != 0 && Clock::now() >= deadline) {
      metrics_.on_deadline_expired();
      obs::log_warn("service.deadline_expired",
                    {{"trace_id", trace_id},
                     {"where", "queue"},
                     {"queue_wait_s", qwait}});
      (*cb)(core::ConfigError{Code::DeadlineExceeded,
                              "AlignService: deadline expired in queue"});
      return;
    }
    if (!db_) {
      metrics_.on_invalid_request();
      (*cb)(core::ConfigError{Code::NoDatabase,
                              "AlignService: no database attached"});
      return;
    }
    if (rq->queries.empty()) {
      metrics_.on_invalid_request();
      (*cb)(core::ConfigError{Code::EmptyRequest,
                              "AlignService: batch with no queries"});
      return;
    }
    auto cfg_or = effective_config(rq->options);
    if (!cfg_or) {
      metrics_.on_invalid_request();
      obs::log_warn("service.invalid_request",
                    {{"trace_id", trace_id},
                     {"message", cfg_or.error().message}});
      (*cb)(cfg_or.error());
      return;
    }
    core::AlignConfig cfg = *cfg_or;
    cfg.traceback = false;
    if (cfg.band >= 0) {
      metrics_.on_invalid_request();
      (*cb)(core::ConfigError{Code::Unsupported,
                              "AlignService: batch cannot band"});
      return;
    }
    const size_t top_k = rq->options.top_k.value_or(opt_.default_top_k);

    align::ExecContext ctx;
    ctx.pool = &pool_;
    ctx.query_cache = query_cache_.get();
    ctx.deadline = deadline;
    ctx.trace = tctx;
    obs::Span dispatch(tctx, "dispatch.batch");
    uint64_t est_cells = 0;
    for (const auto& q : rq->queries)
      est_cells += static_cast<uint64_t>(q.length()) * db_->total_residues();
    perf::Stopwatch sw;
    std::vector<align::BatchQueryResult> results;
    std::optional<perf::TopDownResult> td;
    {
      std::lock_guard<std::mutex> pool_lk(pool_mu_);
      td = maybe_topdown(
          [&] {
            results = align::engine::batch_run(*db_, *packed_, cfg, rq->queries,
                                               top_k, ctx);
          },
          est_cells);
    }
    const double kernel_s = sw.seconds();
    uint64_t cells = 0, retries = 0;
    uint64_t cells8 = 0, useful8 = 0;
    bool truncated = false;
    for (const auto& r : results) {
      cells += r.result.stats.cells;
      retries += r.batch_stats.rescored;
      cells8 += r.batch_stats.cells8;
      useful8 += r.batch_stats.useful_cells8;
      truncated = truncated || r.result.truncated;
    }
    if (truncated) {
      metrics_.on_deadline_expired();
      obs::log_warn("service.deadline_expired",
                    {{"trace_id", trace_id}, {"where", "mid_batch"}});
      (*cb)(core::ConfigError{Code::DeadlineExceeded,
                              "AlignService: deadline expired mid-batch"});
      return;
    }
    RequestTrace tr = make_trace(Scenario::Batch, cfg, qwait, kernel_s, cells,
                                 retries);
    tr.exec_sequence = exec_sequence_.fetch_add(1, std::memory_order_relaxed);
    tr.trace_id = sink != nullptr ? trace_id : 0;
    tr.topdown = std::move(td);
    metrics_.on_completed(perf::MetricsRegistry::Scenario::Batch, kernel_s,
                          cells);
    metrics_.on_tier_completed(static_cast<unsigned>(rq->options.tier),
                               perf::MetricsRegistry::Scenario::Batch,
                               qwait + kernel_s);
    if (cells8 > 0) metrics_.on_batch_packing(cells8, useful8);
    metrics_.on_kernel_completed(tr.isa, perf::KernelVariant::Batch32, cells);
    dispatch.end();
    (*cb)(BatchResponse{std::move(results), tr});
  };
  task.id = trace_id;
  task.scenario = obs::Scenario::Batch;
  task.deadline_ns = deadline_to_ns(deadline);
  task.tier = rq->options.tier;
  enqueue(std::move(task), [&cb](core::ConfigError e) { (*cb)(std::move(e)); });
}

std::future<BatchResponse> AlignService::submit_batch(BatchRequest request) {
  auto prom = std::make_shared<std::promise<BatchResponse>>();
  std::future<BatchResponse> fut = prom->get_future();
  submit_async(std::move(request), [prom](core::ErrorOr<BatchResponse> out) {
    fulfil_promise(prom, std::move(out));
  });
  return fut;
}

}  // namespace swve::service
