// ServiceStatus — the one status vocabulary of the service boundary.
//
// Before the network front door, failures crossed the AlignService seam
// three different ways: core::ConfigError codes inside ErrorOr, a
// ServiceError exception on the future path, and ad-hoc bools in the
// engines. A wire protocol needs exactly one, numerically stable story:
// every outcome a client can observe is a ServiceStatus, its uint8_t value
// IS the protocol v1 status byte, and the legacy vocabularies map onto it
// losslessly (to_status below). Codes are append-only:
// renumbering is a wire-protocol break.
#pragma once

#include <cstdint>

#include "core/error.hpp"

namespace swve::service {

enum class ServiceStatus : uint8_t {
  Ok = 0,                ///< request succeeded; payload carries the result
  InvalidConfig = 1,     ///< alignment config failed validation
  EmptyRequest = 2,      ///< request carries no sequences / queries
  NoDatabase = 3,        ///< search/batch against a database-less service
  QueueFull = 4,         ///< submission queue at capacity (backpressure)
  DeadlineExceeded = 5,  ///< deadline passed while queued or mid-run
  ShuttingDown = 6,      ///< service draining / stopped; not accepted
  Unsupported = 7,       ///< valid request, unsupported combination
  Internal = 8,          ///< unexpected server-side failure
  // Protocol-layer outcomes (produced by the net front door, never by the
  // in-process service):
  BadFrame = 9,          ///< malformed frame / undecodable payload
  FrameTooLarge = 10,    ///< length prefix beyond the server's frame limit
  BadVersion = 11,       ///< wrong magic or unsupported protocol version
  UnknownType = 12,      ///< unrecognized message type byte
};

/// Short stable identifier for logs/metrics ("queue_full", ...).
constexpr const char* status_name(ServiceStatus s) noexcept {
  switch (s) {
    case ServiceStatus::Ok: return "ok";
    case ServiceStatus::InvalidConfig: return "invalid_config";
    case ServiceStatus::EmptyRequest: return "empty_request";
    case ServiceStatus::NoDatabase: return "no_database";
    case ServiceStatus::QueueFull: return "queue_full";
    case ServiceStatus::DeadlineExceeded: return "deadline_exceeded";
    case ServiceStatus::ShuttingDown: return "shutting_down";
    case ServiceStatus::Unsupported: return "unsupported";
    case ServiceStatus::Internal: return "internal";
    case ServiceStatus::BadFrame: return "bad_frame";
    case ServiceStatus::FrameTooLarge: return "frame_too_large";
    case ServiceStatus::BadVersion: return "bad_version";
    case ServiceStatus::UnknownType: return "unknown_type";
  }
  return "unknown";
}

/// The wire status byte of protocol v1 (identity by design, but call this
/// instead of casting so the contract has one spelling).
constexpr uint8_t wire_status(ServiceStatus s) noexcept {
  return static_cast<uint8_t>(s);
}

/// Inverse of wire_status for bytes received off the wire; out-of-range
/// values collapse to Internal rather than inventing a code.
constexpr ServiceStatus status_from_wire(uint8_t b) noexcept {
  return b <= static_cast<uint8_t>(ServiceStatus::UnknownType)
             ? static_cast<ServiceStatus>(b)
             : ServiceStatus::Internal;
}

/// Collapse a core::ConfigError::Code onto the service boundary vocabulary.
/// The four config-validation codes all become InvalidConfig — a client
/// cannot act on the distinction, and the message string keeps the detail.
constexpr ServiceStatus to_status(core::ConfigError::Code c) noexcept {
  using Code = core::ConfigError::Code;
  switch (c) {
    case Code::Ok: return ServiceStatus::Ok;
    case Code::MissingMatrix:
    case Code::NegativeGapPenalty:
    case Code::OpenLessThanExtend:
    case Code::MatchLessThanMismatch: return ServiceStatus::InvalidConfig;
    case Code::EmptyRequest: return ServiceStatus::EmptyRequest;
    case Code::NoDatabase: return ServiceStatus::NoDatabase;
    case Code::QueueFull: return ServiceStatus::QueueFull;
    case Code::DeadlineExceeded: return ServiceStatus::DeadlineExceeded;
    case Code::ShuttingDown: return ServiceStatus::ShuttingDown;
    case Code::Unsupported: return ServiceStatus::Unsupported;
    case Code::Internal: return ServiceStatus::Internal;
    // Artifact problems are a startup-time concern; if one ever surfaces
    // through the request path it is a server-side fault.
    case Code::InvalidArtifact: return ServiceStatus::Internal;
  }
  return ServiceStatus::Internal;
}

}  // namespace swve::service
