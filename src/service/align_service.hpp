// AlignService — the async, metrics-instrumented front door over all three
// usage scenarios.
//
// One service owns:
//   - a parallel::ThreadPool for intra-request fan-out (search/batch),
//   - a bounded submission queue with backpressure (reject or block),
//   - executor threads that drain the queue FIFO,
//   - a perf::MetricsRegistry (request counters, queue-wait and kernel-time
//     histograms, aggregate GCUPS).
//
// Every scenario goes through one request/future API:
//   submit(AlignRequest)   -> std::future<AlignResponse>    (pairwise)
//   submit_search(Search)  -> std::future<SearchResponse>   (scenario 1)
//   submit_batch(Batch)    -> std::future<BatchResponse>    (scenario 2)
//
// Requests route to the same stateless engines the synchronous facades use
// (engine::search_diagonal / search_batch / batch_run / core::diag_align),
// so results are bit-identical to direct DatabaseSearch / BatchServer /
// Aligner calls at the same pool size. Failures — invalid config, queue
// full, deadline expiry, shutdown — fail the future with a ServiceError
// instead of throwing on a worker thread.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "align/batch_server.hpp"
#include "align/db_search.hpp"
#include "align/query_cache.hpp"
#include "align/sharded_search.hpp"
#include "core/batch32.hpp"
#include "core/mapped_db.hpp"
#include "obs/exporters.hpp"
#include "obs/inflight.hpp"
#include "obs/pmu.hpp"
#include "obs/sampler.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/metrics.hpp"
#include "seq/database.hpp"
#include "service/request.hpp"

namespace swve::service {

/// Submission-queue behavior (executors, capacity, backpressure).
struct QueueOptions {
  /// Executor threads draining the submission queue. 1 gives strict FIFO
  /// completion; more lets small pairwise requests overlap.
  unsigned executors = 1;
  /// Bounded submission queue capacity (pending, not yet executing),
  /// summed across QoS tiers.
  size_t capacity = 256;
  /// What submit() does when the queue is full.
  enum class Overflow {
    Reject,  ///< fail the request immediately with QueueFull
    Block,   ///< block the submitter until space frees (backpressure)
  };
  Overflow overflow = Overflow::Reject;
  /// Start with executors paused (tests use this to fill the queue
  /// deterministically); call resume() to begin draining.
  bool start_paused = false;
};

/// Caching layers under the service (batch packing, query-state LRU).
struct CacheOptions {
  /// How the shared database is packed for the batch32 kernel. Every policy
  /// returns identical hits/scores; LengthSorted (default) minimizes the
  /// padding the 8-bit kernel burns on mixed-length batches.
  core::PackingPolicy batch_packing = core::PackingPolicy::LengthSorted;
  /// Distinct (query, config, ISA) entries the query-state cache holds;
  /// back-to-back requests for a cached query skip rebuilding its kernel
  /// feed arrays, and engine workspaces come from a reusable pool.
  size_t query_cache_capacity = 32;
  /// Disable the query-state cache entirely (every request builds its own
  /// state, the pre-cache behavior). For A/B measurement and debugging.
  bool query_cache_bypass = false;
};

/// Scenario-1 sharded execution (align::ShardedSearch): how the packed
/// database is split across NUMA nodes and how shard memory is placed.
struct SearchOptions {
  /// Database shards for batch-mode search. 1 (default) = unsharded flat
  /// pool; 0 = auto (one shard per NUMA node — unsharded on single-node
  /// hosts); N >= 2 forces N shards. Requesting more shards than the packed
  /// database has batches fails construction with a typed config error.
  /// Results are bit-identical for every value.
  int shards = 1;
  /// Thread pinning + memory placement across shards (no effect when
  /// shards resolve to 1; forced Off by SWVE_NUMA=off):
  ///   Off        — shard, but let the scheduler and first-touch decide;
  ///   Interleave — pin shard threads, page-interleave shared columns;
  ///   Bind       — pin shard threads, mbind each shard's columns local.
  parallel::NumaPolicy numa = parallel::NumaPolicy::Off;
};

/// Observability attachments (tracing, sampler, PMU, watchdog, top-down).
struct ObsOptions {
  /// Optional trace sink: when set, every request records queue-wait,
  /// dispatch, and kernel-chunk spans into it (Chrome trace JSON via
  /// obs::TraceSink::chrome_trace_json). Not owned; must outlive the
  /// service. Null = tracing compiled down to null checks.
  obs::TraceSink* trace_sink = nullptr;
  /// Period of the background live-profiling sampler (effective frequency +
  /// metrics time series); 0 disables it.
  double sampler_period_s = 0;
  /// Spin-probe duration per frequency sample (see obs::SamplerOptions).
  double sampler_freq_probe_ms = 5.0;
  /// Attach a perf::topdown_analyze breakdown to one in N completed
  /// requests (RequestTrace::topdown); 0 disables sampling.
  uint32_t topdown_every_n = 0;
  /// Span-scoped hardware-counter attribution: kernel-chunk spans carry
  /// perf_event deltas (cycles/IPC/stalls/misses, effective GHz) and
  /// aggregate per ISA×kernel×width into the metrics. Degrades to a
  /// wall-clock-only fallback (pmu_unavailable gauge = 1) where perf_event
  /// is denied or absent; results are bit-identical either way.
  bool pmu_attribution = true;
  /// Latency SLO for the watchdog: a request executing longer than this
  /// produces one structured slow-request record (span tree + queue state)
  /// while it is still running. 0 disables the watchdog thread.
  double slow_request_slo_s = 0;
  /// Watchdog scan period.
  double watchdog_period_s = 0.05;
  /// Burn-rate SLO alerting over the telemetry history: objectives,
  /// fast/slow windows, thresholds, hysteresis (obs::SloOptions). The
  /// engine runs on the sampler tick and needs the history ring, so it is
  /// active only when serve.telemetry_cadence_s > 0 and at least one
  /// objective is set (the availability objective defaults on).
  obs::SloOptions slo;
};

/// Network front-door knobs, consumed by net::Server (the in-process
/// service ignores this group). Grouped here so one validated ServiceOptions
/// configures the whole serving stack.
struct ServeOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (tests/benches read
  /// it back via net::Server::port()).
  uint16_t port = 0;
  /// Bind address (default loopback; "0.0.0.0" to serve externally).
  std::string bind = "127.0.0.1";
  /// listen(2) backlog.
  int backlog = 128;
  /// Hard per-frame payload limit; a length prefix beyond this is answered
  /// with FrameTooLarge and the connection is closed.
  size_t max_frame_bytes = 16u << 20;
  /// Concurrent connections beyond which accept() immediately closes.
  size_t max_connections = 1024;
  /// Entries in the serialized-response LRU keyed by (scenario, query
  /// bytes, config, top-k, db epoch). 0 disables the result cache.
  size_t result_cache_capacity = 512;
  /// Coalesce identical in-flight requests onto one service execution
  /// (singleflight); every waiter gets a bit-identical response.
  bool singleflight = true;
  /// Answer "GET /metrics" (plus /healthz) on the same port with the
  /// Prometheus exposition — no separate scrape sidecar needed.
  bool http_metrics = true;
  /// Graceful-drain budget on stop/SIGTERM: in-flight and queued requests
  /// get this long to finish and flush before connections are dropped.
  double drain_timeout_s = 10.0;
  /// Telemetry history cadence: every this many seconds the sampler tick
  /// folds a MetricsSnapshot diff into the obs::TimeSeriesStore (the /varz
  /// feed) and re-evaluates the SLO engine. Rides the existing sampler
  /// thread; when obs.sampler_period_s is also set, that period wins and
  /// this acts as an enable switch. 0 disables history, /varz, and SLO
  /// alerting.
  double telemetry_cadence_s = 1.0;
  /// Seconds of history retained; the ring holds retention / cadence
  /// points (~1 KiB each).
  double telemetry_retention_s = 600.0;
  /// Sampled traced requests retained for /tracez.
  size_t tracez_capacity = 32;
};

struct ServiceOptions {
  /// Threads in the owned pool used for intra-request fan-out (0 =
  /// hardware concurrency). Determinism: results match direct driver calls
  /// made with a pool of the same size.
  unsigned pool_threads = 0;
  /// Service-default alignment config (per-request override via
  /// RequestOptions::config).
  core::AlignConfig config;
  /// Service-default hits per query for search/batch.
  size_t default_top_k = 10;

  // The option groups. New code addresses these directly
  // (opt.queue.capacity = ...); the flat references below keep the
  // pre-group spellings compiling unchanged.
  QueueOptions queue;
  CacheOptions cache;
  SearchOptions search;
  ObsOptions obs;
  ServeOptions serve;

  /// Test hook: runs on the executor thread right before each request
  /// executes (its in-flight slot already occupied). Lets tests stall an
  /// engine deterministically to exercise the watchdog.
  std::function<void()> before_execute_hook;

  using Overflow = QueueOptions::Overflow;  // pre-group spelling

  // Deprecated flat aliases (pre-group field names). Each is a reference
  // into its group, so reads and writes through either spelling see the
  // same storage. Prefer the grouped names in new code.
  unsigned& executors = queue.executors;
  size_t& queue_capacity = queue.capacity;
  Overflow& overflow = queue.overflow;
  bool& start_paused = queue.start_paused;
  core::PackingPolicy& batch_packing = cache.batch_packing;
  size_t& query_cache_capacity = cache.query_cache_capacity;
  bool& query_cache_bypass = cache.query_cache_bypass;
  // (swve::obs:: spelled out — the `obs` group member shadows the namespace
  // inside this class scope.)
  swve::obs::TraceSink*& trace_sink = obs.trace_sink;
  double& sampler_period_s = obs.sampler_period_s;
  double& sampler_freq_probe_ms = obs.sampler_freq_probe_ms;
  uint32_t& topdown_every_n = obs.topdown_every_n;
  bool& pmu_attribution = obs.pmu_attribution;
  double& slow_request_slo_s = obs.slow_request_slo_s;
  double& watchdog_period_s = obs.watchdog_period_s;

  // The alias references must always bind to this object's own groups, so
  // copies/moves copy the groups and let the references re-default (a
  // compiler-generated copy would bind them into the source object).
  ServiceOptions() = default;
  ServiceOptions(const ServiceOptions& o) { assign(o); }
  ServiceOptions(ServiceOptions&& o) noexcept { assign(o); }
  ServiceOptions& operator=(const ServiceOptions& o) {
    if (this != &o) assign(o);
    return *this;
  }
  ServiceOptions& operator=(ServiceOptions&& o) noexcept {
    if (this != &o) assign(o);
    return *this;
  }

  /// One validation seam for the whole stack: the alignment config plus
  /// structural sanity of every group (so a server refuses to start on a
  /// config the first request would only have failed at runtime).
  core::ErrorOr<void> try_validate() const {
    if (auto st = config.try_validate(); !st) return st.error();
    using Code = core::ConfigError::Code;
    if (queue.executors == 0)
      return core::ConfigError{Code::Unsupported,
                               "ServiceOptions: queue.executors must be >= 1"};
    if (queue.capacity == 0)
      return core::ConfigError{Code::Unsupported,
                               "ServiceOptions: queue.capacity must be >= 1"};
    if (search.shards < 0)
      return core::ConfigError{Code::Unsupported,
                               "ServiceOptions: search.shards must be >= 0 "
                               "(0 = auto, 1 = unsharded)"};
    if (search.shards > 4096)
      return core::ConfigError{Code::Unsupported,
                               "ServiceOptions: search.shards unreasonably "
                               "large (max 4096)"};
    if (serve.max_frame_bytes < 64)
      return core::ConfigError{
          Code::Unsupported,
          "ServiceOptions: serve.max_frame_bytes too small for any frame"};
    if (serve.bind.empty())
      return core::ConfigError{Code::Unsupported,
                               "ServiceOptions: serve.bind must not be empty"};
    if (serve.drain_timeout_s < 0)
      return core::ConfigError{
          Code::Unsupported, "ServiceOptions: serve.drain_timeout_s < 0"};
    if (serve.tracez_capacity == 0 || serve.tracez_capacity > 65536)
      return core::ConfigError{
          Code::Unsupported,
          "ServiceOptions: serve.tracez_capacity must be in [1, 65536]"};
    if (serve.telemetry_cadence_s < 0)
      return core::ConfigError{
          Code::Unsupported, "ServiceOptions: serve.telemetry_cadence_s < 0"};
    if (serve.telemetry_cadence_s > 0 &&
        serve.telemetry_retention_s < serve.telemetry_cadence_s)
      return core::ConfigError{
          Code::Unsupported,
          "ServiceOptions: serve.telemetry_retention_s must cover at least "
          "one cadence period"};
    if (obs.slo.latency_target_s < 0)
      return core::ConfigError{
          Code::Unsupported, "ServiceOptions: obs.slo.latency_target_s < 0"};
    if (obs.slo.latency_objective < 0 || obs.slo.latency_objective >= 1 ||
        obs.slo.availability_objective < 0 ||
        obs.slo.availability_objective >= 1)
      return core::ConfigError{
          Code::Unsupported,
          "ServiceOptions: SLO objectives must be in [0, 1)"};
    if (obs.slo.fast_window_s <= 0 ||
        obs.slo.slow_window_s < obs.slo.fast_window_s)
      return core::ConfigError{
          Code::Unsupported,
          "ServiceOptions: SLO windows need 0 < fast_window_s <= "
          "slow_window_s"};
    if (obs.slo.warning_burn <= 0 ||
        obs.slo.firing_burn < obs.slo.warning_burn)
      return core::ConfigError{
          Code::Unsupported,
          "ServiceOptions: SLO burn thresholds need 0 < warning_burn <= "
          "firing_burn"};
    if (obs.slo.enter_evals < 1 || obs.slo.exit_evals < 1)
      return core::ConfigError{
          Code::Unsupported,
          "ServiceOptions: SLO hysteresis eval counts must be >= 1"};
    return {};
  }

 private:
  void assign(const ServiceOptions& o) {
    pool_threads = o.pool_threads;
    config = o.config;
    default_top_k = o.default_top_k;
    queue = o.queue;
    cache = o.cache;
    search = o.search;
    obs = o.obs;
    serve = o.serve;
    before_execute_hook = o.before_execute_hook;
  }
};

class AlignService {
 public:
  /// Pairwise-only service (no database; search/batch submissions fail
  /// their future with Code::NoDatabase).
  explicit AlignService(ServiceOptions options = {});

  /// Full service over a shared database. The database is packed for the
  /// batch32 kernel once, up front; it must outlive the service.
  AlignService(const seq::SequenceDatabase& db, ServiceOptions options = {});

  /// Full service over an opened swve db artifact: the sequence database
  /// and the packed batch database are both served straight out of the
  /// mapping — nothing is re-packed, so construction cost is independent
  /// of database size. `mapped` must outlive the service. The cache
  /// packing-policy option is ignored (the artifact fixes the policy).
  AlignService(const core::MappedDb& mapped, ServiceOptions options = {});

  /// Fails every pending request with Code::ShuttingDown, then joins.
  ~AlignService();
  AlignService(const AlignService&) = delete;
  AlignService& operator=(const AlignService&) = delete;

  // Non-throwing submission: exactly one `done` invocation per call, with
  // the response or a core::ConfigError (map to the wire with to_status()).
  // Immediate rejections (queue full under Overflow::Reject, shutdown) run
  // `done` inline on the submitting thread. This is the primary API — the
  // network front door hangs its completion pump on it.
  void submit_async(AlignRequest request, AlignCompletion done);
  void submit_async(SearchRequest request, SearchCompletion done);
  void submit_async(BatchRequest request, BatchCompletion done);

  // Deprecated future-based shims over submit_async: failures surface as a
  // ServiceError thrown from future::get() instead of an ErrorOr. Kept for
  // existing embedders; no new functionality lands here.
  std::future<AlignResponse> submit(AlignRequest request);
  std::future<SearchResponse> submit_search(SearchRequest request);
  std::future<BatchResponse> submit_batch(BatchRequest request);

  /// Point-in-time metrics (request counts, latency histograms, GCUPS,
  /// per-target counters, pool utilization).
  perf::MetricsSnapshot metrics() const;

  /// metrics() rendered in the given exposition format (human text,
  /// Prometheus 0.0.4, or JSON).
  std::string dump_metrics(obs::MetricsFormat format) const;

  /// Time series collected by the background sampler, oldest first (empty
  /// when sampler_period_s == 0).
  std::vector<obs::Sample> samples() const;
  /// The live sampler, or null when disabled.
  const obs::Sampler* sampler() const noexcept { return sampler_.get(); }

  /// Delta-encoded telemetry history (the /varz feed), or null when
  /// serve.telemetry_cadence_s == 0.
  const obs::TimeSeriesStore* timeseries() const noexcept {
    return timeseries_.get();
  }
  /// The burn-rate SLO engine, or null when telemetry is off or no
  /// objective is configured.
  const obs::SloEngine* slo() const noexcept { return slo_.get(); }
  /// Last SLO evaluation (default-constructed Ok status without an engine).
  obs::SloStatus slo_status() const {
    return slo_ ? slo_->status() : obs::SloStatus{};
  }

  /// Pending (queued, not yet executing) requests.
  size_t queue_depth() const;

  /// Pause/resume the executors (in-flight requests finish; queued ones
  /// wait). Used by tests and for drain-style maintenance.
  void pause();
  void resume();

  unsigned pool_threads() const noexcept { return pool_.size(); }
  const ServiceOptions& options() const noexcept { return opt_; }
  bool has_database() const noexcept { return db_ != nullptr; }
  /// The shared database (null for a pairwise-only service); the network
  /// layer fingerprints it into cache keys (net::database_epoch).
  const seq::SequenceDatabase* database() const noexcept { return db_; }
  /// Lanes of the packed batch database (0 without a database).
  int batch_lanes() const noexcept { return packed_ ? packed_->lanes() : 0; }
  /// The packed batch database (null without one); exposes packing policy
  /// and efficiency. Owned or a view into the mapped artifact.
  const core::Batch32Db* packed_db() const noexcept { return packed_; }

  /// Where the database bytes live: Built (packed in-process), Mmap, Shm.
  core::DbSource db_source() const noexcept { return db_source_; }
  /// The artifact's content fingerprint; 0 when the service was built from
  /// an in-memory database (the network layer then computes it itself).
  uint64_t db_epoch() const noexcept { return db_epoch_; }
  /// Database startup time: artifact open or in-process pack, to ready.
  double db_load_seconds() const noexcept { return db_load_seconds_; }
  /// Mapped artifact size in bytes (0 for a built database).
  size_t db_map_bytes() const noexcept {
    return mapped_ ? mapped_->mapped_bytes() : 0;
  }
  /// The backing artifact, when started from one.
  const core::MappedDb* mapped_db() const noexcept { return mapped_; }
  /// The query-state cache (null when bypassed).
  const align::QueryStateCache* query_cache() const noexcept {
    return query_cache_.get();
  }
  /// The sharded search engine, or null when search.shards resolved to 1
  /// (the unsharded flat-pool path). Per-shard stats for /statusz and the
  /// exporters come from here.
  const align::ShardedSearch* sharded() const noexcept {
    return sharded_.get();
  }

  /// The service's metrics registry — wiring point for the flight recorder
  /// and anything else that wants raw counters rather than snapshots.
  perf::MetricsRegistry* registry() noexcept { return &metrics_; }
  /// Per-executor in-flight request table (always present).
  const obs::InFlightTable* inflight() const noexcept {
    return inflight_.get();
  }
  /// The SLO watchdog, or null when slow_request_slo_s == 0.
  const obs::Watchdog* watchdog() const noexcept { return watchdog_.get(); }
  /// SLO breaches detected so far (0 without a watchdog).
  uint64_t slow_requests() const noexcept {
    return watchdog_ ? watchdog_->detected() : 0;
  }

 private:
  // Delegation target for the public constructors: everything except the
  // sampler/telemetry threads, which each public constructor starts via
  // start_telemetry() only once its database fields are fully initialized
  // (the sampler thread reads them through metrics()).
  struct InitTag {};
  AlignService(InitTag, ServiceOptions options);
  void start_telemetry();
  /// Build the sharded engine when search.shards != 1 (db ctors, after
  /// packed_ is set). Throws std::invalid_argument on a typed config error
  /// (shards > batches), matching constructor-time validation behavior.
  void init_sharding();

  struct Task {
    /// Runs the request (aborted=true: fail the completion without running).
    std::function<void(bool aborted)> run;
    uint64_t id = 0;                               ///< request trace id
    obs::Scenario scenario = obs::Scenario::Pairwise;
    uint64_t deadline_ns = 0;  ///< absolute, steady_now_ns() scale; 0=none
    QosTier tier = QosTier::Standard;
  };

  /// Resolve per-request options against service defaults; returns the
  /// effective validated config or a ConfigError.
  core::ErrorOr<core::AlignConfig> effective_config(
      const RequestOptions& options) const;

  /// Enqueue under the capacity policy (into the task's QoS tier). On
  /// rejection, fulfils `reject` with the QueueFull/ShuttingDown error and
  /// returns false.
  bool enqueue(Task task,
               const std::function<void(core::ConfigError)>& reject);

  /// Pending tasks summed across tiers. Caller holds mu_.
  size_t queued_locked() const;
  /// Pop the highest-priority pending task. Caller holds mu_ and has
  /// checked queued_locked() > 0.
  Task pop_locked();

  void executor_loop(unsigned index);

  /// The TraceContext requests thread through the engines: sink + trace id,
  /// plus the PMU session and registry when attribution is on.
  obs::TraceContext trace_context(uint64_t trace_id) noexcept;

  /// Allocate a request id: from the sink when tracing (so spans correlate)
  /// or from the service's own counter (so the watchdog and in-flight table
  /// still get unique ids).
  uint64_t next_request_id() noexcept;

  /// Fill the common trace fields once execution finished.
  RequestTrace make_trace(Scenario scenario, const core::AlignConfig& cfg,
                          double queue_wait_s, double kernel_s,
                          uint64_t cells, uint64_t retries) const;

  /// Run `work`, wrapping it in perf::topdown_analyze for one in
  /// topdown_every_n calls (est_cells feeds the analytical-model fallback).
  /// The work runs exactly once either way.
  std::optional<perf::TopDownResult> maybe_topdown(
      const std::function<void()>& work, uint64_t est_cells);

  /// Effective frequency for the top-down analytical model, measured once
  /// (~10 ms) on first use and cached.
  double model_ghz();

  ServiceOptions opt_;
  const seq::SequenceDatabase* db_ = nullptr;
  std::unique_ptr<core::Batch32Db> bdb_;       // owned packing (Built path)
  const core::Batch32Db* packed_ = nullptr;    // always the one to search
  const core::MappedDb* mapped_ = nullptr;     // artifact path only
  core::DbSource db_source_ = core::DbSource::Built;
  uint64_t db_epoch_ = 0;
  double db_load_seconds_ = 0;
  std::unique_ptr<align::QueryStateCache> query_cache_;
  std::unique_ptr<align::ShardedSearch> sharded_;  // search.shards != 1

  parallel::ThreadPool pool_;
  std::mutex pool_mu_;  ///< one fan-out request on the pool at a time

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< executors: queue non-empty/stop
  std::condition_variable space_cv_;  ///< blocking submitters: space freed
  std::array<std::deque<Task>, kQosTiers> queues_;  ///< one FIFO per tier
  bool stop_ = false;
  bool paused_ = false;

  std::vector<std::thread> executors_;
  perf::MetricsRegistry metrics_;
  std::atomic<uint64_t> exec_sequence_{0};

  // Telemetry history + SLO engine, fed from the sampler tick. Declared
  // before sampler_ so even default member destruction tears the sampler
  // (the only writer) down first; the destructor also resets it explicitly.
  std::unique_ptr<obs::TimeSeriesStore> timeseries_;
  std::unique_ptr<obs::SloEngine> slo_;
  std::unique_ptr<obs::Sampler> sampler_;  ///< live profiler (optional)
  std::atomic<uint64_t> topdown_seq_{0};   ///< one-in-N request sampling
  std::atomic<double> model_ghz_{0};       ///< cached frequency estimate

  std::unique_ptr<obs::InFlightTable> inflight_;  ///< slot per executor
  std::unique_ptr<obs::Watchdog> watchdog_;       ///< SLO scanner (optional)
  std::atomic<uint64_t> request_ids_{0};  ///< id source when not tracing
};

}  // namespace swve::service
