#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

#include "parallel/topology.hpp"

namespace swve::parallel {

ThreadPool::ThreadPool(unsigned threads) : ThreadPool(threads, {}) {}

ThreadPool::ThreadPool(unsigned threads, std::vector<int> affinity_cpus)
    : affinity_cpus_(std::move(affinity_cpus)) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned w = 0; w < threads; ++w)
    workers_.emplace_back([this, w] {
      if (!affinity_cpus_.empty()) pin_current_thread(affinity_cpus_);
      worker_loop(w);
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop(unsigned id) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    const auto t0 = std::chrono::steady_clock::now();
    job.fn(id);
    const auto dur = std::chrono::steady_clock::now() - t0;
    busy_ns_.fetch_add(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dur).count()),
        std::memory_order_relaxed);
    jobs_run_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--outstanding_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(size_t n,
                              const std::function<void(size_t, size_t, unsigned)>& fn) {
  if (n == 0) return;
  const unsigned workers = size();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (unsigned w = 0; w < workers; ++w) {
      jobs_.push(Job{[n, w, workers, &fn](unsigned id) {
        auto [b, e] = block_range(n, w, workers);
        if (b < e) fn(b, e, id);
      }});
    }
    outstanding_ += workers;
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return outstanding_ == 0; });
}

void ThreadPool::parallel_for_async(
    size_t n, std::function<void(size_t, size_t, unsigned)> fn,
    std::function<void()> on_done) {
  if (n == 0) {
    if (on_done) on_done();
    return;
  }
  const unsigned workers = size();
  // Shared completion state: the worker that retires the last block fires
  // on_done (after its own fn), so the callback never runs concurrently
  // with any block of this fan-out.
  struct Shared {
    std::function<void(size_t, size_t, unsigned)> fn;
    std::function<void()> on_done;
    std::atomic<unsigned> remaining;
  };
  auto shared = std::make_shared<Shared>();
  shared->fn = std::move(fn);
  shared->on_done = std::move(on_done);
  shared->remaining.store(workers, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (unsigned w = 0; w < workers; ++w) {
      jobs_.push(Job{[n, w, workers, shared](unsigned) {
        auto [b, e] = block_range(n, w, workers);
        // Pass the *block* index, not the executing worker id: under
        // concurrent fan-outs one worker can run several blocks, and
        // callers index per-block output slots by this id.
        if (b < e) shared->fn(b, e, w);
        if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
            shared->on_done)
          shared->on_done();
      }});
    }
    outstanding_ += workers;
  }
  cv_.notify_all();
}

void ThreadPool::parallel_chunks(size_t chunks,
                                 const std::function<void(size_t, unsigned)>& fn) {
  if (chunks == 0) return;
  auto next = std::make_shared<std::atomic<size_t>>(0);
  const unsigned workers = size();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (unsigned w = 0; w < workers; ++w) {
      jobs_.push(Job{[chunks, next, &fn](unsigned id) {
        for (;;) {
          size_t c = next->fetch_add(1, std::memory_order_relaxed);
          if (c >= chunks) return;
          fn(c, id);
        }
      }});
    }
    outstanding_ += workers;
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return outstanding_ == 0; });
}

}  // namespace swve::parallel
