// Fixed-size thread pool with deterministic static partitioning.
//
// The paper's scenario drivers split work statically (contiguous index
// ranges) and merge results in index order, so results are bit-identical
// for any thread count — part of the library's determinism guarantee.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace swve::parallel {

/// Worker-utilization accounting for a ThreadPool (see ThreadPool::stats).
struct PoolStats {
  unsigned threads = 0;
  uint64_t jobs = 0;         ///< jobs executed (one per worker per fan-out)
  double busy_seconds = 0;   ///< summed wall time workers spent in jobs
};

class ThreadPool {
 public:
  /// `threads` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  /// Pinned pool: every worker is bound to `affinity_cpus` (a NUMA node or
  /// CCX slice, see parallel/topology.hpp). Pinning is best-effort — an
  /// empty set or a failed sched_setaffinity leaves workers unpinned.
  ThreadPool(unsigned threads, std::vector<int> affinity_cpus);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Lifetime utilization counters (lock-free reads; updated by workers
  /// after each job). Busy fraction over a span T is
  /// busy_seconds / (threads * T).
  PoolStats stats() const noexcept {
    return PoolStats{size(), jobs_run_.load(std::memory_order_relaxed),
                     static_cast<double>(
                         busy_ns_.load(std::memory_order_relaxed)) *
                         1e-9};
  }

  /// Run fn(begin, end, worker) over [0, n) split into size() contiguous
  /// blocks; blocks before returning. Worker ids are stable in [0, size()).
  /// The calling thread does not execute work (workers own their scratch).
  void parallel_for(size_t n,
                    const std::function<void(size_t, size_t, unsigned)>& fn);

  /// Run fn(chunk_index, worker) for every chunk in [0, chunks); chunks are
  /// handed out dynamically but results should be written by chunk_index so
  /// output stays deterministic.
  void parallel_chunks(size_t chunks,
                       const std::function<void(size_t, unsigned)>& fn);

  /// Non-blocking parallel_for: enqueues the same static split and returns
  /// immediately; `on_done` runs exactly once, on the worker that finishes
  /// the last block. Lets one caller fan out over several pools at once
  /// (per-shard pools in align::ShardedSearch) and wait on its own latch.
  /// Unlike parallel_for, fn's third argument is the *block* index in
  /// [0, size()) — stable per block even when one worker executes several
  /// blocks of the same fan-out — so callers can index output slots by it.
  void parallel_for_async(size_t n,
                          std::function<void(size_t, size_t, unsigned)> fn,
                          std::function<void()> on_done);

  /// Jobs enqueued or running right now (queue-depth gauge; approximate).
  size_t pending() const noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    return outstanding_;
  }

 private:
  struct Job {
    std::function<void(unsigned)> fn;  // receives worker id
  };
  void worker_loop(unsigned id);

  std::vector<std::thread> workers_;
  std::vector<int> affinity_cpus_;  // empty: unpinned
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::queue<Job> jobs_;
  size_t outstanding_ = 0;
  bool stop_ = false;
  std::atomic<uint64_t> jobs_run_{0};
  std::atomic<uint64_t> busy_ns_{0};
};

/// Contiguous block [begin, end) of [0, n) for worker `w` of `workers`.
inline std::pair<size_t, size_t> block_range(size_t n, unsigned w, unsigned workers) {
  const size_t base = n / workers, rem = n % workers;
  const size_t begin = static_cast<size_t>(w) * base + std::min<size_t>(w, rem);
  return {begin, begin + base + (w < rem ? 1 : 0)};
}

}  // namespace swve::parallel
