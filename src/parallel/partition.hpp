// Residue-balanced static partitioning of a sequence database.
//
// SW cost per target sequence is proportional to its length, so splitting
// by sequence *count* leaves threads imbalanced (Swiss-Prot lengths span two
// orders of magnitude). These helpers split a database into contiguous
// index ranges of approximately equal total residues.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "seq/database.hpp"

namespace swve::parallel {

/// Contiguous [begin, end) index ranges over db (in database order), one per
/// part, each covering roughly total_residues/parts residues. Some trailing
/// ranges may be empty when parts > db.size().
inline std::vector<std::pair<size_t, size_t>> partition_by_residues(
    const seq::SequenceDatabase& db, unsigned parts) {
  std::vector<std::pair<size_t, size_t>> out(parts, {0, 0});
  if (parts == 0 || db.empty()) return out;
  const uint64_t total = db.total_residues();
  size_t i = 0;
  uint64_t consumed = 0;
  for (unsigned p = 0; p < parts; ++p) {
    const size_t begin = i;
    // Target cumulative residues at the end of part p.
    const uint64_t target = total * (p + 1) / parts;
    while (i < db.size() && consumed < target) {
      consumed += db[i].length();
      ++i;
    }
    out[p] = {begin, i};
  }
  out[parts - 1].second = db.size();  // absorb rounding leftovers
  return out;
}

}  // namespace swve::parallel
