// Residue-balanced static partitioning of a sequence database.
//
// SW cost per target sequence is proportional to its length, so splitting
// by sequence *count* leaves threads imbalanced (Swiss-Prot lengths span two
// orders of magnitude). These helpers split a database into contiguous
// index ranges of approximately equal total residues.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "seq/database.hpp"

namespace swve::parallel {

/// Contiguous [begin, end) index ranges over db (in database order), one per
/// part, each covering roughly total_residues/parts residues. Some trailing
/// ranges may be empty when parts > db.size().
///
/// Per-part targets are recomputed from what is actually left, not from the
/// fixed grid total*(p+1)/parts: a sequence far above the per-part average
/// (one mega-protein in a short-read database) overshoots its part's share,
/// and with fixed cumulative targets every following part whose grid point
/// the overshoot already passed came out empty — the rest of the database
/// piled onto the final part and one thread ran it serially. Rebalancing
/// spreads the post-outlier remainder evenly over the remaining parts.
inline std::vector<std::pair<size_t, size_t>> partition_by_residues(
    const seq::SequenceDatabase& db, unsigned parts) {
  std::vector<std::pair<size_t, size_t>> out(parts, {0, 0});
  if (parts == 0 || db.empty()) return out;
  const uint64_t total = db.total_residues();
  size_t i = 0;
  uint64_t consumed = 0;
  for (unsigned p = 0; p < parts; ++p) {
    const size_t begin = i;
    // Even share of the residues still unassigned (ceil, so the last part
    // is the short one when it doesn't divide evenly).
    const unsigned parts_left = parts - p;
    const uint64_t target = (total - consumed + parts_left - 1) / parts_left;
    uint64_t part_sum = 0;
    while (i < db.size() && part_sum < target) {
      part_sum += db[i].length();
      ++i;
    }
    consumed += part_sum;
    out[p] = {begin, i};
  }
  out[parts - 1].second = db.size();  // absorb rounding leftovers
  return out;
}

}  // namespace swve::parallel
