#include "parallel/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <dirent.h>
#include <pthread.h>
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace swve::parallel {

const char* numa_policy_name(NumaPolicy p) noexcept {
  switch (p) {
    case NumaPolicy::Off: return "off";
    case NumaPolicy::Interleave: return "interleave";
    case NumaPolicy::Bind: return "bind";
  }
  return "unknown";
}

bool parse_numa_policy(const std::string& s, NumaPolicy* out) noexcept {
  if (s == "off") *out = NumaPolicy::Off;
  else if (s == "interleave") *out = NumaPolicy::Interleave;
  else if (s == "bind") *out = NumaPolicy::Bind;
  else return false;
  return true;
}

bool numa_disabled_by_env() noexcept {
  const char* v = std::getenv("SWVE_NUMA");
  return v != nullptr &&
         (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0);
}

std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> cpus;
  std::stringstream ss(list);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    const size_t dash = tok.find('-');
    char* end = nullptr;
    if (dash == std::string::npos) {
      long c = std::strtol(tok.c_str(), &end, 10);
      if (end != tok.c_str() && c >= 0) cpus.push_back(static_cast<int>(c));
    } else {
      long lo = std::strtol(tok.c_str(), &end, 10);
      long hi = std::strtol(tok.c_str() + dash + 1, &end, 10);
      if (lo < 0 || hi < lo || hi - lo > 4096) continue;
      for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

namespace {

std::string read_first_line(const std::string& path) {
  std::ifstream f(path);
  std::string line;
  if (f) std::getline(f, line);
  return line;
}

Topology synthetic_topology(const std::string& sysfs) {
  Topology topo;
  topo.synthetic = true;
  Topology::Node node;
  node.id = 0;
  node.cpus = parse_cpulist(
      read_first_line(sysfs + "/devices/system/cpu/online"));
  if (node.cpus.empty()) {
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    for (unsigned c = 0; c < hw; ++c) node.cpus.push_back(static_cast<int>(c));
  }
  topo.nodes.push_back(std::move(node));
  return topo;
}

}  // namespace

Topology Topology::detect_at(const std::string& sysfs) {
  if (numa_disabled_by_env()) return synthetic_topology(sysfs);
  Topology topo;
#if defined(__linux__)
  const std::string node_dir = sysfs + "/devices/system/node";
  if (DIR* d = opendir(node_dir.c_str())) {
    while (dirent* e = readdir(d)) {
      int id = -1;
      if (std::sscanf(e->d_name, "node%d", &id) != 1 || id < 0) continue;
      Node node;
      node.id = id;
      node.cpus = parse_cpulist(
          read_first_line(node_dir + "/" + e->d_name + "/cpulist"));
      if (!node.cpus.empty()) topo.nodes.push_back(std::move(node));
    }
    closedir(d);
  }
  std::sort(topo.nodes.begin(), topo.nodes.end(),
            [](const Node& a, const Node& b) { return a.id < b.id; });
#endif
  if (topo.nodes.empty()) return synthetic_topology(sysfs);
  return topo;
}

Topology Topology::detect() { return detect_at("/sys"); }

bool pin_current_thread(const std::vector<int>& cpus) noexcept {
#if defined(__linux__)
  if (cpus.empty() || numa_disabled_by_env()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int c : cpus)
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpus;
  return false;
#endif
}

namespace {

#if defined(__linux__) && defined(SYS_mbind)
// Matching <numaif.h> without depending on libnuma's headers.
constexpr int kMpolBind = 2;
constexpr int kMpolInterleave = 3;
constexpr unsigned kMpolMfMove = 1u << 1;  // best-effort page migration

bool mbind_range(const void* addr, size_t len, int mode,
                 const unsigned long* nodemask, unsigned long maxnode) {
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return false;
  // Round inward: mbind requires a page-aligned start, and we must not
  // touch bytes outside the caller's range.
  auto begin = reinterpret_cast<uintptr_t>(addr);
  auto end = begin + len;
  begin = (begin + static_cast<uintptr_t>(page) - 1) &
          ~(static_cast<uintptr_t>(page) - 1);
  end &= ~(static_cast<uintptr_t>(page) - 1);
  if (begin >= end) return false;
  return syscall(SYS_mbind, begin, end - begin, mode, nodemask, maxnode,
                 kMpolMfMove) == 0;
}
#endif

}  // namespace

bool bind_memory_to_node(const void* addr, size_t len, int node) noexcept {
#if defined(__linux__) && defined(SYS_mbind)
  if (addr == nullptr || len == 0 || node < 0 || node >= 64 ||
      numa_disabled_by_env())
    return false;
  unsigned long mask = 1ul << node;
  return mbind_range(addr, len, kMpolBind, &mask, 64);
#else
  (void)addr;
  (void)len;
  (void)node;
  return false;
#endif
}

bool interleave_memory(const void* addr, size_t len,
                       unsigned num_nodes) noexcept {
#if defined(__linux__) && defined(SYS_mbind)
  if (addr == nullptr || len == 0 || num_nodes == 0 || num_nodes > 64 ||
      numa_disabled_by_env())
    return false;
  unsigned long mask =
      num_nodes >= 64 ? ~0ul : ((1ul << num_nodes) - 1ul);
  return mbind_range(addr, len, kMpolInterleave, &mask, 64);
#else
  (void)addr;
  (void)len;
  (void)num_nodes;
  return false;
#endif
}

}  // namespace swve::parallel
