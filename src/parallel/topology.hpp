// Minimal NUMA/CPU topology reader and placement helpers (no libnuma).
//
// The sharded search (align::ShardedSearch) wants to know how many memory
// nodes the host has and which CPUs belong to each, so it can pin one
// thread-pool slice per node and place each shard's packed columns on the
// node that scans them. Linking libnuma for that would add the repo's first
// external dependency; everything needed is available from sysfs
// (/sys/devices/system/node) plus two raw syscalls (sched_setaffinity,
// mbind), all best-effort:
//   * detection falls back to a single synthetic node covering every online
//     CPU (containers, non-Linux, SWVE_NUMA=off);
//   * pinning and mbind return false instead of failing the search — the
//     result is bit-identical either way, placement only moves bytes closer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace swve::parallel {

/// Memory-placement policy for sharded search (ServiceOptions search.numa).
enum class NumaPolicy : uint8_t {
  Off,         ///< no pinning, no mbind: first-touch wherever threads land
  Interleave,  ///< pin shard threads; interleave shared pages across nodes
  Bind,        ///< pin shard threads; bind each shard's columns to its node
};
const char* numa_policy_name(NumaPolicy p) noexcept;
/// Parses "off" / "interleave" / "bind"; false on anything else.
bool parse_numa_policy(const std::string& s, NumaPolicy* out) noexcept;

/// `SWVE_NUMA=off` disables topology detection and all placement syscalls
/// (mirrors SWVE_SHM / SWVE_PMU). Read once per call — cheap.
bool numa_disabled_by_env() noexcept;

struct Topology {
  struct Node {
    int id = 0;
    std::vector<int> cpus;  ///< online CPUs of the node, ascending
  };
  std::vector<Node> nodes;  ///< ascending node id; never empty after detect()
  bool synthetic = false;   ///< true when sysfs had no node dirs (fallback)

  size_t node_count() const noexcept { return nodes.size(); }
  bool multi_node() const noexcept { return nodes.size() > 1; }
  unsigned total_cpus() const noexcept {
    size_t n = 0;
    for (const auto& node : nodes) n += node.cpus.size();
    return static_cast<unsigned>(n);
  }

  /// Detect from /sys/devices/system/node; single synthetic node over all
  /// online CPUs when that fails or SWVE_NUMA=off. Never returns an empty
  /// topology.
  static Topology detect();
  /// Same, rooted at `sysfs` instead of /sys (test seam).
  static Topology detect_at(const std::string& sysfs);
};

/// Parse a sysfs cpulist ("0-3,8,10-11") into ascending CPU ids.
std::vector<int> parse_cpulist(const std::string& list);

/// Pin the calling thread to `cpus` via sched_setaffinity. Best-effort:
/// false on non-Linux, empty set, or EPERM — the thread keeps running
/// unpinned.
bool pin_current_thread(const std::vector<int>& cpus) noexcept;

/// mbind [addr, addr+len) (rounded inward to whole pages) to one node
/// (MPOL_BIND) — the "shard owns its columns" placement. Best-effort.
bool bind_memory_to_node(const void* addr, size_t len, int node) noexcept;

/// mbind the range MPOL_INTERLEAVE across nodes [0, num_nodes) — spreads a
/// shared region (e.g. a single-shard column stream read by every node)
/// evenly. Best-effort.
bool interleave_memory(const void* addr, size_t len,
                       unsigned num_nodes) noexcept;

}  // namespace swve::parallel
