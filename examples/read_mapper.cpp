// Scenario 3: SW as a subroutine. A toy DNA read mapper: short reads are
// aligned against a reference with a reusable Aligner (zero allocation per
// call once warm), reporting mapped position, CIGAR, and identity — the
// SSW-library usage pattern the paper cites.
//
//   ./example_read_mapper [--reads N] [--read-len N] [--ref-len N] [--error R]
#include <cstdio>
#include <cstring>
#include <random>

#include "swve.hpp"

using namespace swve;

int main(int argc, char** argv) {
  int reads = 2000, read_len = 100;
  uint32_t ref_len = 100'000;
  double error = 0.03;
  for (int i = 1; i < argc - 1; ++i) {
    if (!std::strcmp(argv[i], "--reads")) reads = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--read-len")) read_len = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--ref-len"))
      ref_len = static_cast<uint32_t>(std::atoi(argv[++i]));
    else if (!std::strcmp(argv[i], "--error")) error = std::atof(argv[++i]);
  }

  seq::Sequence ref = seq::generate_sequence(5, ref_len, seq::AlphabetKind::Dna);

  // Simulated reads: windows of the reference with point errors.
  std::mt19937_64 rng(6);
  std::vector<seq::Sequence> read_set;
  std::vector<size_t> truth;
  for (int k = 0; k < reads; ++k) {
    size_t pos = rng() % (ref_len - static_cast<uint32_t>(read_len));
    truth.push_back(pos);
    read_set.push_back(
        seq::mutate(ref.subsequence(pos, static_cast<size_t>(read_len)), rng(), error));
  }

  align::AlignConfig cfg;
  cfg.scheme = core::ScoreScheme::Fixed;  // classic DNA scoring
  cfg.match = 2;
  cfg.mismatch = -3;
  cfg.gap_open = 5;
  cfg.gap_extend = 2;
  cfg.traceback = true;
  cfg.max_traceback_cells = uint64_t{1} << 33;
  align::Aligner aligner(cfg);

  perf::Stopwatch sw;
  int mapped = 0, correct = 0;
  uint64_t cells = 0;
  uint64_t matches = 0, aligned_cols = 0;
  for (int k = 0; k < reads; ++k) {
    const seq::Sequence& read = read_set[static_cast<size_t>(k)];
    core::Alignment a = aligner.align(read, ref);
    cells += read.length() * ref.length();
    // Accept if most of the read aligned.
    if (a.score >= read_len) {  // >= half the perfect score of 2*len
      ++mapped;
      if (static_cast<size_t>(std::abs(a.begin_ref - static_cast<int>(
                                                         truth[static_cast<size_t>(k)]))) < 8)
        ++correct;
      aligned_cols += a.cigar.ref_consumed();
      // identity from the CIGAR match columns
      size_t qi = static_cast<size_t>(a.begin_query);
      size_t rj = static_cast<size_t>(a.begin_ref);
      for (size_t c = 0; c < a.cigar.size(); ++c) {
        auto op = a.cigar.op(c);
        for (uint32_t u = 0; u < a.cigar.len(c); ++u) {
          if (op == core::CigarOp::Match) {
            matches += read.codes()[qi] == ref.codes()[rj];
            ++qi;
            ++rj;
          } else if (op == core::CigarOp::Ins) {
            ++qi;
          } else {
            ++rj;
          }
        }
      }
    }
  }
  double secs = sw.seconds();

  std::printf("reference %u bp | %d reads x %d bp, %.1f%% simulated error\n", ref_len,
              reads, read_len, 100 * error);
  std::printf("mapped   %d/%d (%.1f%%), correct locus %d (%.1f%% of mapped)\n", mapped,
              reads, 100.0 * mapped / reads, correct,
              mapped ? 100.0 * correct / mapped : 0.0);
  std::printf("identity %.2f%% over %llu aligned columns\n",
              aligned_cols ? 100.0 * static_cast<double>(matches) /
                                 static_cast<double>(aligned_cols)
                           : 0.0,
              static_cast<unsigned long long>(aligned_cols));
  std::printf("throughput %.2f GCUPS, %.1f us/read (traceback included)\n",
              perf::gcups(cells, secs), secs / reads * 1e6);
  return 0;
}
