// Scenario 2: a centralized alignment server. Clients submit queries; the
// service accumulates them and scores whole batches against the shared
// database with the inter-sequence batch32 kernel, then re-aligns the top
// hit of each query exactly (with traceback) for the response.
//
// This demo drives service::AlignService — the async request/future front
// door — exactly as a network server embedding the library would: the batch
// goes through submit_batch(), each exact re-alignment through submit()
// with a per-request traceback override, and the run ends with the
// service's own metrics snapshot.
//
//   ./example_batch_server_demo [--clients N] [--db-residues N]
#include <cstdio>
#include <cstring>
#include <future>
#include <iostream>

#include "swve.hpp"

using namespace swve;

int main(int argc, char** argv) {
  int clients = 16;
  uint64_t db_residues = 1'000'000;
  for (int i = 1; i < argc - 1; ++i) {
    if (!std::strcmp(argv[i], "--clients")) clients = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--db-residues"))
      db_residues = std::strtoull(argv[++i], nullptr, 10);
  }

  // The shared database, packed once at server start-up.
  seq::SyntheticConfig sc;
  sc.seed = 21;
  sc.target_residues = db_residues;
  seq::SequenceDatabase db = seq::SequenceDatabase::synthetic(sc);

  perf::Stopwatch boot;
  service::ServiceOptions so;  // hardware pool threads, default config
  service::AlignService server(db, so);
  std::printf("server up: %zu sequences packed into %d-lane batches in %.3f s\n",
              db.size(), server.batch_lanes(), boot.seconds());

  // "Clients": a mix of query lengths, a few of them homologous to database
  // entries so the demo returns biologically-meaningful hits.
  std::vector<seq::Sequence> queries =
      seq::make_query_ladder(33, clients, 80, 1200);
  for (int k = 0; k < clients; k += 4)
    queries[static_cast<size_t>(k)] =
        seq::mutate(db[static_cast<size_t>(k * 37) % db.size()], 44, 0.2);

  perf::Stopwatch sw;
  service::BatchRequest batch;
  batch.queries = queries;
  batch.options.top_k = 3;
  service::BatchResponse resp = server.submit_batch(std::move(batch)).get();
  double secs = sw.seconds();

  uint64_t cells = 0;
  for (const auto& q : queries) cells += q.length() * db.total_residues();
  std::printf("batch of %d queries served in %.3f s  (%.2f GCUPS aggregate)\n\n",
              clients, secs, perf::gcups(cells, secs));

  // Exact re-alignment of each winner, again through the service (pairwise
  // path, traceback override), futures collected before rendering.
  std::vector<std::future<service::AlignResponse>> realigns(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (resp.results[qi].result.hits.empty()) continue;
    service::AlignRequest rq;
    rq.query = queries[qi];
    rq.reference = db[resp.results[qi].result.hits[0].seq_index];
    rq.options.traceback = true;
    realigns[qi] = server.submit(std::move(rq));
  }

  perf::Table t({"query", "len", "best target", "score", "cigar (exact realign)",
                 "8-bit rescored"});
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& r = resp.results[qi];
    if (r.result.hits.empty()) {
      t.row({queries[qi].id(), std::to_string(queries[qi].length()), "-", "0", "-",
             std::to_string(r.batch_stats.rescored)});
      continue;
    }
    const align::Hit& top = r.result.hits[0];
    core::Alignment exact = realigns[qi].get().alignment;
    std::string cig = exact.cigar.to_string();
    if (cig.size() > 26) cig = cig.substr(0, 23) + "...";
    t.row({queries[qi].id(), std::to_string(queries[qi].length()),
           db[top.seq_index].id(), std::to_string(top.score), cig,
           std::to_string(r.batch_stats.rescored)});
  }
  t.print(std::cout);
  std::puts("\n('8-bit rescored' = lanes that saturated the 8-bit batch kernel and");
  std::puts(" were re-scored exactly by the 16/32-bit diagonal ladder)");

  std::fputs(server.metrics().to_string().c_str(), stdout);
  return 0;
}
