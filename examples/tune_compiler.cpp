// Compiler-hyperparameter tuning demo (§III-E / Fig 10): evolve GCC flag
// settings for the SW kernel with the genetic algorithm.
//
//   ./example_tune_compiler          # deterministic simulated surface
//   ./example_tune_compiler --real   # compile+dlopen+time with real gcc
#include <cstdio>
#include <cstring>
#include <memory>

#include "swve.hpp"

using namespace swve;

int main(int argc, char** argv) {
  const bool real = argc > 1 && !std::strcmp(argv[1], "--real");
  tune::FlagSpace space = tune::FlagSpace::gcc_default();
  std::printf("flag space: %zu hyperparameters, ~%.1e combinations\n", space.size(),
              space.search_space_size());

  std::unique_ptr<tune::Evaluator> eval;
  if (real) {
    auto gcc = std::make_unique<tune::GccEvaluator>(space);
    if (!gcc->available()) {
      std::puts("gcc+dlopen unavailable here; falling back to the simulated surface");
    } else {
      std::puts("evaluator: real gcc (each evaluation compiles & times the kernel)");
      eval = std::move(gcc);
    }
  }
  if (!eval) {
    std::puts("evaluator: simulated response surface (seed 7, query size 512)");
    eval = std::make_unique<tune::SimulatedEvaluator>(space, 7, 512);
  }

  tune::GaParams p;
  p.seed = 3;
  p.population = real ? 8 : 24;
  p.generations = real ? 4 : 15;
  std::printf("GA: population %d, %d generations, tournament %d, mutation %.2f\n\n",
              p.population, p.generations, p.tournament, p.mutation_rate);

  tune::GaResult res = tune::run_ga(space, *eval, p);

  std::printf("baseline (plain -O3): %.3f\n", res.baseline_fitness);
  for (size_t g = 0; g < res.generation_best.size(); ++g)
    std::printf("  gen %2zu best: %.3f  (+%.1f%%)\n", g + 1, res.generation_best[g],
                100.0 * (res.generation_best[g] / res.baseline_fitness - 1.0));
  std::printf("\nbest individual (+%.1f%%, %llu evaluations):\n  %s\n",
              100.0 * res.improvement(),
              static_cast<unsigned long long>(res.evaluations),
              space.to_string(res.best).c_str());
  return 0;
}
