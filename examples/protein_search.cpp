// Scenario 1: search one protein query against a database, multithreaded,
// and print a BLAST-style hit report with alignments for the top hits.
//
//   ./example_protein_search [--db FASTA] [--query FASTA] [--top K]
//                            [--matrix blosum62] [--open 11] [--extend 1]
//
// Without --db a synthetic Swiss-Prot-like database is generated and the
// query is a mutated copy of one of its entries, so hits are meaningful.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "swve.hpp"

using namespace swve;

int main(int argc, char** argv) {
  std::string db_path, query_path, matrix_name = "blosum62";
  size_t top_k = 5;
  int open = 11, extend = 1;
  for (int i = 1; i < argc - 1; ++i) {
    if (!std::strcmp(argv[i], "--db")) db_path = argv[++i];
    else if (!std::strcmp(argv[i], "--query")) query_path = argv[++i];
    else if (!std::strcmp(argv[i], "--top")) top_k = std::strtoul(argv[++i], nullptr, 10);
    else if (!std::strcmp(argv[i], "--matrix")) matrix_name = argv[++i];
    else if (!std::strcmp(argv[i], "--open")) open = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--extend")) extend = std::atoi(argv[++i]);
  }

  seq::SequenceDatabase db;
  seq::Sequence query;
  if (!db_path.empty()) {
    db = seq::SequenceDatabase::from_fasta_file(db_path, seq::Alphabet::protein());
    query = query_path.empty()
                ? db[0]
                : seq::read_fasta_file(query_path, seq::Alphabet::protein()).at(0);
  } else {
    std::puts("(no --db given: generating a 2 Maa synthetic database; the query is");
    std::puts(" a 15%-mutated copy of one entry, so a strong hit exists)");
    seq::SyntheticConfig sc;
    sc.seed = 7;
    sc.target_residues = 2'000'000;
    db = seq::SequenceDatabase::synthetic(sc);
    query = seq::mutate(db[db.size() / 2], 11, 0.15);
  }

  align::AlignConfig cfg;
  const matrix::ScoreMatrix* m = matrix::ScoreMatrix::find(matrix_name);
  if (!m) {
    std::fprintf(stderr, "unknown matrix %s\n", matrix_name.c_str());
    return 1;
  }
  cfg.matrix = m;
  cfg.gap_open = open;
  cfg.gap_extend = extend;

  std::printf("database: %zu sequences, %llu residues | query: %s (%zu aa)\n",
              db.size(), static_cast<unsigned long long>(db.total_residues()),
              query.id().c_str(), query.length());

  parallel::ThreadPool pool;  // hardware concurrency
  align::DatabaseSearch search(db, cfg);
  align::SearchResult res = search.search(query, top_k, &pool);

  std::printf("searched in %.3f s  (%.2f GCUPS on %u threads)\n\n", res.seconds,
              res.gcups(), pool.size());

  // E-value statistics: published Gumbel parameters when available,
  // otherwise a quick empirical calibration with the same kernel config.
  align::KarlinParams kp;
  if (auto p = align::published_gapped(matrix_name, open, extend)) {
    kp = *p;
  } else {
    std::puts("(calibrating Gumbel statistics empirically for this scoring...)");
    kp = align::calibrate_gapped(cfg, 150, 150, 5);
  }

  align::AlignConfig tb_cfg = cfg;
  tb_cfg.traceback = true;
  align::Aligner realigner(tb_cfg);

  perf::Table t({"#", "target", "len", "score", "bits", "E-value", "identity",
                 "q-range", "t-range"});
  int rank = 1;
  for (const align::Hit& h : res.hits) {
    const seq::Sequence& target = db[h.seq_index];
    core::Alignment a = realigner.align(query, target);
    align::AlignmentStats st = align::alignment_stats(query, target, a);
    char ev[32];
    std::snprintf(ev, sizeof(ev), "%.1e",
                  align::evalue(kp, a.score, query.length(), db.total_residues()));
    t.row({std::to_string(rank++), target.id(), std::to_string(target.length()),
           std::to_string(a.score),
           perf::Table::num(align::bitscore(kp, a.score), 1), ev,
           perf::Table::percent(st.identity()),
           std::to_string(a.begin_query) + "-" + std::to_string(a.end_query),
           std::to_string(a.begin_ref) + "-" + std::to_string(a.end_ref)});
  }
  t.print(std::cout);

  if (!res.hits.empty()) {
    const seq::Sequence& best = db[res.hits[0].seq_index];
    core::Alignment a = realigner.align(query, best);
    std::printf("\nbest alignment (%s):\n\n%s", best.id().c_str(),
                align::format_alignment(query, best, a).c_str());
  }
  return 0;
}
