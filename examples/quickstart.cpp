// Quickstart: align two protein sequences and print score, coordinates,
// CIGAR, identity statistics, and a rendered alignment.
//
//   ./example_quickstart [QUERY] [TARGET]
//
// Sequences are plain residue strings; defaults demonstrate a gapped match.
#include <cstdio>

#include "swve.hpp"

using namespace swve;

int main(int argc, char** argv) {
  const char* qs = argc > 1 ? argv[1] : "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ";
  const char* rs = argc > 2 ? argv[2] : "MKTAYIAKQRDDQISFVKSHFSRQLEERLGLIE";

  seq::Sequence query("query", qs, seq::Alphabet::protein());
  seq::Sequence target("target", rs, seq::Alphabet::protein());

  align::AlignConfig cfg;          // BLOSUM62, affine 11/1, adaptive width,
  cfg.traceback = true;            // widest ISA this CPU supports
  align::Aligner aligner(cfg);

  core::Alignment a = aligner.align(query, target);
  align::AlignmentStats stats = align::alignment_stats(query, target, a);

  std::printf("score      %d", a.score);
  if (auto kp = align::published_gapped("blosum62", cfg.gap_open, cfg.gap_extend))
    std::printf("   (%.1f bits)", align::bitscore(*kp, a.score));
  std::printf("\n");
  std::printf("identity   %.1f%% (%llu/%llu columns, %llu gaps)\n",
              100.0 * stats.identity(),
              static_cast<unsigned long long>(stats.matches),
              static_cast<unsigned long long>(stats.columns),
              static_cast<unsigned long long>(stats.gaps));
  std::printf("query      [%d, %d] of %zu\n", a.begin_query, a.end_query,
              query.length());
  std::printf("target     [%d, %d] of %zu\n", a.begin_ref, a.end_ref,
              target.length());
  std::printf("cigar      %s\n", a.cigar.to_string().c_str());
  std::printf("kernel     %s, %s-bit%s\n", simd::isa_name(a.isa_used),
              a.width_used == core::Width::W8    ? "8"
              : a.width_used == core::Width::W16 ? "16"
                                                 : "32",
              a.saturated_8 ? " (8-bit saturated, re-ran wider)" : "");
  std::printf("\n%s", align::format_alignment(query, target, a).c_str());
  return 0;
}
