// swve_top — a terminal dashboard over a running swve_server.
//
//   swve_top [--host ADDR] [--port N] [--interval S] [--window S] [--once]
//
// Polls the server's /varz telemetry history and /statusz and redraws a
// single ANSI frame per interval: Unicode sparklines for QPS, per-tier
// p99, result-cache hit rate, and GCUPS; the latest PMU readings (IPC,
// backend-stall fraction, effective GHz) per ISA x kernel x width cell;
// and the burn-rate alert state. Plain escape codes only — no curses, so
// it works over any ssh session and inside CI logs (--once prints one
// frame and exits without touching the cursor).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/json.hpp"

using swve::net::Json;

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fputs(
      "usage: swve_top [--host ADDR] [--port N] [--interval S]\n"
      "                [--window S] [--once]\n",
      stderr);
  std::exit(2);
}

/// Eight-level Unicode sparkline of the series tail, scaled to its own
/// maximum (a flat-zero series renders as a run of the lowest bar).
std::string sparkline(const std::vector<double>& v, size_t width) {
  static const char* kBars[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  const size_t n = std::min(v.size(), width);
  std::string out;
  if (n == 0) return out;
  double hi = 0;
  for (size_t i = v.size() - n; i < v.size(); ++i) hi = std::max(hi, v[i]);
  for (size_t i = v.size() - n; i < v.size(); ++i) {
    int level = 0;
    if (hi > 0) {
      level = static_cast<int>(v[i] / hi * 7.0 + 0.5);
      level = std::clamp(level, 0, 7);
    }
    out += kBars[level];
  }
  return out;
}

/// Pull one numeric field out of every /varz point, oldest first.
std::vector<double> series_of(const Json& points, const char* key) {
  std::vector<double> out;
  if (!points.is_array()) return out;
  for (const Json& p : points.as_array()) out.push_back(p[key].as_number());
  return out;
}

/// Per-tier p99 series: points[i].tiers[t].p99_ms.
std::vector<double> tier_p99_series(const Json& points, size_t tier) {
  std::vector<double> out;
  if (!points.is_array()) return out;
  for (const Json& p : points.as_array()) {
    const Json& tiers = p["tiers"];
    out.push_back(tiers.is_array() && tier < tiers.as_array().size()
                      ? tiers.as_array()[tier]["p99_ms"].as_number()
                      : 0.0);
  }
  return out;
}

const char* state_color(const std::string& state) {
  if (state == "firing") return "\x1b[1;31m";   // bold red
  if (state == "warning") return "\x1b[1;33m";  // bold yellow
  return "\x1b[1;32m";                          // bold green
}

double last_of(const std::vector<double>& v) {
  return v.empty() ? 0.0 : v.back();
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7731;
  double interval_s = 1.0;
  double window_s = 120.0;
  bool once = false;

  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + s).c_str());
      return argv[++i];
    };
    if (s == "--host") host = next();
    else if (s == "--port") port = static_cast<uint16_t>(std::atoi(next()));
    else if (s == "--interval") interval_s = std::atof(next());
    else if (s == "--window") window_s = std::atof(next());
    else if (s == "--once") once = true;
    else if (s == "--help" || s == "-h") usage();
    else usage(("unknown option " + s).c_str());
  }
  if (interval_s <= 0) interval_s = 1.0;
  if (window_s <= 0) window_s = 120.0;

  const std::string varz_path =
      "/varz?window=" + std::to_string(static_cast<int>(window_s));
  constexpr size_t kSparkWidth = 60;

  for (;;) {
    const auto varz = swve::net::http_get(host, port, varz_path, 5.0);
    if (!varz) {
      std::fprintf(stderr, "swve_top: %s:%u: %s\n", host.c_str(), port,
                   varz.error().message.c_str());
      return 1;
    }
    const auto doc = Json::parse(*varz);
    if (!doc) {
      // A 503 body ("telemetry history disabled...") is not JSON; show it.
      std::fprintf(stderr, "swve_top: %s", varz.value().c_str());
      return 1;
    }
    const Json& points = (*doc)["points"];
    const size_t npoints =
        points.is_array() ? points.as_array().size() : 0;

    // /statusz carries what the history does not: uptime, drain state, and
    // the hysteresis-filtered SLO alert.
    std::string uptime = "?", slo_state = "ok", slo_line;
    bool draining = false;
    if (const auto statusz =
            swve::net::http_get(host, port, "/statusz", 5.0)) {
      if (const auto sdoc = Json::parse(*statusz)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0fs",
                      (*sdoc)["uptime_s"].as_number());
        uptime = buf;
        draining = (*sdoc)["draining"].as_bool();
        const Json& slo = (*sdoc)["slo"];
        if (slo.is_object()) {
          slo_state = slo["state"].as_string();
          char line[160];
          std::snprintf(
              line, sizeof line,
              "burn lat %.2f/%.2f avail %.2f/%.2f (fast/slow), "
              "transitions %.0f",
              slo["latency"]["fast_burn"].as_number(),
              slo["latency"]["slow_burn"].as_number(),
              slo["availability"]["fast_burn"].as_number(),
              slo["availability"]["slow_burn"].as_number(),
              slo["transitions"].as_number());
          slo_line = line;
        }
      }
    }

    const std::vector<double> qps = series_of(points, "qps");
    const std::vector<double> cache = series_of(points, "cache_hit_rate");
    const std::vector<double> gcups = series_of(points, "gcups");
    const std::vector<double> queue = series_of(points, "queue_depth");

    std::string frame;
    if (!once) frame += "\x1b[H\x1b[J";  // home + clear
    char line[256];
    std::snprintf(line, sizeof line,
                  "swve_top — %s:%u   up %s%s   samples %zu   alert %s%s"
                  "\x1b[0m\n",
                  host.c_str(), port, uptime.c_str(),
                  draining ? " (draining)" : "", npoints,
                  state_color(slo_state), slo_state.c_str());
    frame += line;
    if (!slo_line.empty()) {
      frame += "  ";
      frame += slo_line;
      frame += "\n";
    }
    frame += "\n";

    std::snprintf(line, sizeof line, "  %-9s %8.1f  %s\n", "qps",
                  last_of(qps), sparkline(qps, kSparkWidth).c_str());
    frame += line;
    static const char* kTierNames[] = {"interactive", "standard", "bulk"};
    for (size_t t = 0; t < 3; ++t) {
      const std::vector<double> p99 = tier_p99_series(points, t);
      std::snprintf(line, sizeof line, "  p99 %-12s %6.2fms %s\n",
                    kTierNames[t], last_of(p99),
                    sparkline(p99, kSparkWidth).c_str());
      frame += line;
    }
    std::snprintf(line, sizeof line, "  %-9s %7.0f%%  %s\n", "cache",
                  last_of(cache) * 100.0,
                  sparkline(cache, kSparkWidth).c_str());
    frame += line;
    std::snprintf(line, sizeof line, "  %-9s %8.2f  %s\n", "gcups",
                  last_of(gcups), sparkline(gcups, kSparkWidth).c_str());
    frame += line;
    std::snprintf(line, sizeof line, "  %-9s %8.0f  %s\n", "queue",
                  last_of(queue), sparkline(queue, kSparkWidth).c_str());
    frame += line;

    // Latest PMU cells: one row per ISA x kernel x width that retired
    // instructions in the last interval.
    if (npoints > 0) {
      const Json& pmu = points.as_array().back()["pmu"];
      if (pmu.is_array() && !pmu.as_array().empty()) {
        frame += "\n  kernel cells (last interval):\n";
        std::snprintf(line, sizeof line, "  %-8s %-10s %5s %6s %7s %6s\n",
                      "isa", "kernel", "width", "ipc", "stall", "ghz");
        frame += line;
        for (const Json& c : pmu.as_array()) {
          std::snprintf(line, sizeof line,
                        "  %-8s %-10s %5.0f %6.2f %6.1f%% %6.2f\n",
                        c["isa"].as_string().c_str(),
                        c["kernel"].as_string().c_str(),
                        c["width"].as_number(), c["ipc"].as_number(),
                        c["stall_be"].as_number() * 100.0,
                        c["ghz"].as_number());
          frame += line;
        }
        const double freq =
            points.as_array().back()["avx512_freq_ratio"].as_number();
        if (freq > 0) {
          std::snprintf(line, sizeof line,
                        "  avx512 frequency ratio %.2f%s\n", freq,
                        freq < 0.97 ? "  (license throttling?)" : "");
          frame += line;
        }
      }

      // Per-shard throughput: one sparkline row per database shard, so
      // NUMA imbalance (one shard's GCUPS or queue diverging from its
      // peers') is visible at a glance.
      const Json& shards = points.as_array().back()["shards"];
      if (shards.is_array() && !shards.as_array().empty()) {
        frame += "\n  shards (gcups | queue):\n";
        const size_t nshards = shards.as_array().size();
        for (size_t sh = 0; sh < nshards; ++sh) {
          std::vector<double> sh_gcups, sh_queue;
          for (const Json& p : points.as_array()) {
            const Json& arr = p["shards"];
            const bool have =
                arr.is_array() && sh < arr.as_array().size();
            sh_gcups.push_back(
                have ? arr.as_array()[sh]["gcups"].as_number() : 0.0);
            sh_queue.push_back(
                have ? arr.as_array()[sh]["queue_depth"].as_number() : 0.0);
          }
          const Json& last = shards.as_array()[sh];
          const double node = last["node"].as_number();
          char tag[24];
          if (node >= 0)
            std::snprintf(tag, sizeof tag, "s%zu/n%.0f", sh, node);
          else
            std::snprintf(tag, sizeof tag, "s%zu", sh);
          std::snprintf(line, sizeof line,
                        "  %-9s %8.2f  %s  q%3.0f %s\n", tag,
                        last_of(sh_gcups),
                        sparkline(sh_gcups, kSparkWidth / 2).c_str(),
                        last_of(sh_queue),
                        sparkline(sh_queue, kSparkWidth / 2).c_str());
          frame += line;
        }
      }
    }

    std::fputs(frame.c_str(), stdout);
    std::fflush(stdout);
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  }
}
