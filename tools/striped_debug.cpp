// Find and shrink a striped16-vs-golden mismatch on low-complexity inputs.
#include <cstdio>
#include <random>
#include <vector>

#include "baseline/striped.hpp"
#include "core/scalar_ref.hpp"

using namespace swve;

static seq::Sequence runny(std::mt19937_64& rng, uint32_t len, int alpha = 3) {
  std::vector<uint8_t> codes;
  while (codes.size() < len) {
    uint8_t c = static_cast<uint8_t>(rng() % alpha);
    size_t run = 1 + rng() % 17;
    for (size_t k = 0; k < run && codes.size() < len; ++k) codes.push_back(c);
  }
  return seq::Sequence("runny", std::move(codes), seq::Alphabet::protein());
}

int main() {
  core::Workspace ws;
  std::mt19937_64 rng(34);
  for (int it = 0; it < 2000; ++it) {
    auto q = runny(rng, 4 + rng() % 120);
    auto r = runny(rng, 4 + rng() % 120);
    core::AlignConfig cfg;
    cfg.gap_open = 1 + static_cast<int>(rng() % 2);
    cfg.gap_extend = 1;
    int ref = core::ref_align(q, r, cfg).score;
    baseline::StripedAligner sa(q, cfg);
    int got = sa.align16(r, ws).score;
    if (got != ref) {
      std::printf("MISMATCH it=%d m=%zu n=%zu open=%d ext=%d got=%d ref=%d\n", it,
                  q.length(), r.length(), cfg.gap_open, cfg.gap_extend, got, ref);
      // Shrink: trim from both ends while the mismatch persists.
      auto qc = std::vector<uint8_t>(q.codes().begin(), q.codes().end());
      auto rc = std::vector<uint8_t>(r.codes().begin(), r.codes().end());
      bool shrunk = true;
      while (shrunk) {
        shrunk = false;
        for (int side = 0; side < 4; ++side) {
          auto q2 = qc;
          auto r2 = rc;
          if (side == 0 && q2.size() > 1) q2.erase(q2.begin());
          else if (side == 1 && q2.size() > 1) q2.pop_back();
          else if (side == 2 && r2.size() > 1) r2.erase(r2.begin());
          else if (side == 3 && r2.size() > 1) r2.pop_back();
          else continue;
          seq::Sequence qs("q", q2, seq::Alphabet::protein());
          seq::Sequence rs("r", r2, seq::Alphabet::protein());
          int ref2 = core::ref_align(qs, rs, cfg).score;
          baseline::StripedAligner sa2(qs, cfg);
          int got2 = sa2.align16(rs, ws).score;
          if (got2 != ref2) {
            qc = q2;
            rc = r2;
            shrunk = true;
            break;
          }
        }
      }
      seq::Sequence qs("q", qc, seq::Alphabet::protein());
      seq::Sequence rs("r", rc, seq::Alphabet::protein());
      std::printf("shrunk: m=%zu n=%zu\nq=%s\nr=%s\n", qc.size(), rc.size(),
                  qs.to_string().c_str(), rs.to_string().c_str());
      baseline::StripedAligner sa2(qs, cfg);
      std::printf("golden=%d striped=%d\n", core::ref_align(qs, rs, cfg).score,
                  sa2.align16(rs, ws).score);
      return 1;
    }
  }
  std::printf("no mismatch found\n");
  return 0;
}
