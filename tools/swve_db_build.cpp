// swve_db_build — FASTA -> .swdb artifact compiler.
//
// Encodes, length-orders, and batch-transposes a FASTA database exactly the
// way a server would at startup, then persists the result in the swve db
// format (core/db_format.hpp). Servers started with `--db out.swdb` mmap
// the artifact instead of repeating that work, so their startup cost no
// longer scales with database size.
//
//   swve_db_build db.fasta -o db.swdb [--alphabet protein|dna]
//                 [--packing length-sorted|db-order|length-binned]
//                 [--lanes 32|64] [--verify]
//
// --verify round-trips the freshly written file: reopen via core::MappedDb
// with every section checksum enforced, then compare the mapped view
// against the in-memory original (epoch, ids, residues, batch metadata).
// Exit status 0 on success, 1 on any failure.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/batch32.hpp"
#include "core/db_format.hpp"
#include "core/mapped_db.hpp"
#include "perf/timer.hpp"
#include "seq/database.hpp"

using namespace swve;

namespace {

int fail(const std::string& msg) {
  std::fprintf(stderr, "swve_db_build: %s\n", msg.c_str());
  return 1;
}

int usage() {
  std::fprintf(stderr,
               "usage: swve_db_build INPUT.fasta -o OUTPUT.swdb\n"
               "         [--alphabet protein|dna] [--lanes 32|64]\n"
               "         [--packing length-sorted|db-order|length-binned]\n"
               "         [--verify]\n");
  return 1;
}

/// The mapped view must reproduce the in-memory database exactly — same
/// ids, same residue codes, same batch placement. O(database), on purpose:
/// this is the build-time paranoia pass.
int verify_roundtrip(const seq::SequenceDatabase& db, const core::Batch32Db& bdb,
                     const core::MappedDb& mapped) {
  if (mapped.epoch() != core::database_fingerprint(db))
    return fail("verify: fingerprint mismatch after round-trip");
  const seq::SequenceDatabase& mdb = mapped.db();
  if (mdb.size() != db.size() || mdb.total_residues() != db.total_residues())
    return fail("verify: database shape mismatch after round-trip");
  for (size_t i = 0; i < db.size(); ++i) {
    if (mdb[i].id() != db[i].id())
      return fail("verify: sequence id mismatch at index " + std::to_string(i));
    if (mdb[i].codes().size() != db[i].codes().size() ||
        std::memcmp(mdb[i].data(), db[i].data(), db[i].length()) != 0)
      return fail("verify: residue mismatch at index " + std::to_string(i));
  }
  const core::Batch32Db& mb = mapped.batch_db();
  if (mb.batch_count() != bdb.batch_count() || mb.lanes() != bdb.lanes() ||
      mb.policy() != bdb.policy())
    return fail("verify: batch layout mismatch after round-trip");
  for (size_t b = 0; b < bdb.batch_count(); ++b) {
    const auto x = bdb.batch(b);
    const auto y = mb.batch(b);
    if (x.max_len != y.max_len || x.count != y.count ||
        x.real_residues != y.real_residues ||
        std::memcmp(x.columns, y.columns,
                    static_cast<size_t>(x.max_len) * bdb.lanes()) != 0 ||
        std::memcmp(x.seq_index, y.seq_index, x.count * sizeof(uint32_t)) != 0 ||
        std::memcmp(x.seq_len, y.seq_len, x.count * sizeof(uint32_t)) != 0)
      return fail("verify: batch content mismatch at batch " + std::to_string(b));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  const seq::Alphabet* alphabet = &seq::Alphabet::protein();
  core::PackingPolicy packing = core::PackingPolicy::LengthSorted;
  int lanes = 32;
  bool verify = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "-o" || a == "--output") {
      const char* v = next();
      if (v == nullptr) return usage();
      output = v;
    } else if (a == "--alphabet") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "protein") == 0) alphabet = &seq::Alphabet::protein();
      else if (std::strcmp(v, "dna") == 0) alphabet = &seq::Alphabet::dna();
      else return fail("unknown alphabet '" + std::string(v) + "'");
    } else if (a == "--packing") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "length-sorted") == 0)
        packing = core::PackingPolicy::LengthSorted;
      else if (std::strcmp(v, "db-order") == 0)
        packing = core::PackingPolicy::DbOrder;
      else if (std::strcmp(v, "length-binned") == 0)
        packing = core::PackingPolicy::LengthBinned;
      else return fail("unknown packing policy '" + std::string(v) + "'");
    } else if (a == "--lanes") {
      const char* v = next();
      if (v == nullptr) return usage();
      lanes = std::atoi(v);
      if (lanes != 32 && lanes != 64) return fail("--lanes must be 32 or 64");
    } else if (a == "--verify") {
      verify = true;
    } else if (a == "-h" || a == "--help") {
      usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else if (input.empty()) {
      input = a;
    } else {
      return usage();
    }
  }
  if (input.empty() || output.empty()) return usage();

  perf::Stopwatch total;
  seq::SequenceDatabase db;
  try {
    db = seq::SequenceDatabase::from_fasta_file(input, *alphabet);
  } catch (const std::exception& e) {
    return fail("cannot read '" + input + "': " + e.what());
  }
  if (db.empty()) return fail("'" + input + "' contains no sequences");
  const double read_s = total.seconds();

  perf::Stopwatch pack;
  const core::Batch32Db bdb(db, lanes, packing);
  const double pack_s = pack.seconds();

  perf::Stopwatch write;
  auto stats = core::write_swdb(db, bdb, output);
  if (!stats) return fail(stats.error().message);
  const double write_s = write.seconds();

  std::fprintf(stderr,
               "swve_db_build: %s -> %s\n"
               "  sequences      %zu (%llu residues, max %zu)\n"
               "  packing        %s, %d lanes, %llu batches, %.1f%% efficient\n"
               "  db_epoch       %016llx\n"
               "  file           %.2f MiB\n"
               "  time           read %.0f ms, pack %.0f ms, write %.0f ms\n",
               input.c_str(), output.c_str(), db.size(),
               static_cast<unsigned long long>(db.total_residues()),
               db.max_length(), core::packing_policy_name(packing), lanes,
               static_cast<unsigned long long>(stats->batch_count),
               100.0 * bdb.packing_efficiency(),
               static_cast<unsigned long long>(stats->db_epoch),
               static_cast<double>(stats->file_bytes) / (1024.0 * 1024.0),
               read_s * 1e3, pack_s * 1e3, write_s * 1e3);

  if (verify) {
    core::MappedDbOptions mopts;
    mopts.verify_all = true;
    auto mapped = core::MappedDb::open(output, mopts);
    if (!mapped) return fail("verify: " + mapped.error().message);
    const int rc = verify_roundtrip(db, bdb, **mapped);
    if (rc != 0) return rc;
    std::fprintf(stderr,
                 "  verify         ok (all checksums + content round-trip, "
                 "load %.1f ms)\n",
                 (*mapped)->load_seconds() * 1e3);
  }
  return 0;
}
