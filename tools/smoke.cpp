// Bring-up smoke test: every diag kernel (ISA x width x gap x scheme x tb)
// against the golden scalar model on randomized sequences. Exits non-zero
// and prints the first mismatch.
#include <cstdio>
#include <random>
#include <vector>

#include "baseline/diag_basic.hpp"
#include "baseline/scan.hpp"
#include "baseline/striped.hpp"
#include "core/batch32.hpp"
#include "core/dispatch.hpp"
#include "core/scalar_ref.hpp"
#include "core/traceback.hpp"
#include "seq/synthetic.hpp"
#include "simd/cpu.hpp"

using namespace swve;

static int smoke_baselines() {
  if (!simd::isa_available(simd::Isa::Avx2)) {
    std::printf("baselines: skipped (no AVX2)\n");
    return 0;
  }
  std::mt19937_64 rng(11);
  core::Workspace ws;
  int checked = 0;
  for (int iter = 0; iter < 40; ++iter) {
    int m = 1 + static_cast<int>(rng() % 180);
    int n = 1 + static_cast<int>(rng() % 220);
    auto q = seq::generate_sequence(rng(), static_cast<uint32_t>(m));
    auto r = seq::generate_sequence(rng(), static_cast<uint32_t>(n));
    core::AlignConfig cfg;
    cfg.gap_open = 5 + static_cast<int>(rng() % 10);
    cfg.gap_extend = 1 + static_cast<int>(rng() % 3);
    core::Alignment ref = core::ref_align(q, r, cfg);

    baseline::StripedAligner striped(q, cfg);
    baseline::ScanAligner scan(q, cfg);
    baseline::DiagBasicAligner diag(q, cfg);
    int s8 = striped.align8(r, ws).saturated ? ref.score : striped.align8(r, ws).score;
    int s16 = striped.align16(r, ws).score;
    int sc = scan.align16(r, ws).score;
    int db = diag.align16(r, ws).score;
    if (s8 != ref.score || s16 != ref.score || sc != ref.score || db != ref.score) {
      std::printf("BASELINE MISMATCH iter=%d m=%d n=%d: ref=%d striped8=%d "
                  "striped16=%d scan=%d diag=%d\n",
                  iter, m, n, ref.score, s8, s16, sc, db);
      return 1;
    }
    ++checked;
  }
  std::printf("baselines OK: %d\n", checked);
  return 0;
}

static int smoke_batch32() {
  std::mt19937_64 rng(13);
  core::Workspace ws;
  seq::SyntheticConfig sc;
  sc.seed = 77;
  sc.target_residues = 40'000;
  sc.min_length = 5;
  sc.max_length = 400;
  seq::SequenceDatabase db = seq::SequenceDatabase::synthetic(sc);
  core::AlignConfig cfg;
  auto q = seq::generate_sequence(123, 120);

  for (int lanes : {32, 64}) {
    core::Batch32Db bdb(db, lanes);
    std::vector<int> scores = core::batch_scores(q, bdb, db, cfg, ws);
    for (size_t s = 0; s < db.size(); ++s) {
      core::Alignment ref = core::ref_align(q, db[s], cfg);
      if (scores[s] != ref.score) {
        std::printf("BATCH MISMATCH lanes=%d seq=%zu len=%zu: got=%d ref=%d\n", lanes,
                    s, db[s].length(), scores[s], ref.score);
        return 1;
      }
    }
    std::printf("batch32 lanes=%d OK: %zu sequences (pad overhead %.1f%%)\n", lanes,
                db.size(), 100.0 * bdb.padding_overhead());
  }
  return 0;
}

int main() {
  std::mt19937_64 rng(7);
  core::Workspace ws;
  int checked = 0;

  std::vector<simd::Isa> isas = {simd::Isa::Scalar};
  if (simd::isa_available(simd::Isa::Sse41)) isas.push_back(simd::Isa::Sse41);
  if (simd::isa_available(simd::Isa::Avx2)) isas.push_back(simd::Isa::Avx2);
  if (simd::isa_available(simd::Isa::Avx512)) isas.push_back(simd::Isa::Avx512);

  for (int iter = 0; iter < 60; ++iter) {
    int m = 1 + static_cast<int>(rng() % 150);
    int n = 1 + static_cast<int>(rng() % 200);
    auto q = seq::generate_sequence(rng(), static_cast<uint32_t>(m));
    auto r = seq::generate_sequence(rng(), static_cast<uint32_t>(n));

    for (int scheme = 0; scheme < 2; ++scheme)
      for (int gm = 0; gm < 2; ++gm)
        for (int tb = 0; tb < 2; ++tb) {
          core::AlignConfig cfg;
          cfg.scheme = scheme ? core::ScoreScheme::Fixed : core::ScoreScheme::Matrix;
          cfg.gap_model = gm ? core::GapModel::Linear : core::GapModel::Affine;
          cfg.gap_open = 11;
          cfg.gap_extend = 1;
          cfg.traceback = tb != 0;
          core::Alignment ref = core::ref_align(q, r, cfg);

          for (simd::Isa isa : isas)
            for (core::Width w :
                 {core::Width::W8, core::Width::W16, core::Width::W32,
                  core::Width::Adaptive}) {
              cfg.isa = isa;
              cfg.width = w;
              core::Alignment got = core::diag_align(q, r, cfg, ws);
              if (got.saturated) continue;  // fixed narrow width overflowed
              if (got.score != ref.score || got.end_query != ref.end_query ||
                  got.end_ref != ref.end_ref) {
                std::printf(
                    "MISMATCH iter=%d m=%d n=%d isa=%s w=%d scheme=%d gm=%d tb=%d: "
                    "got score=%d end=(%d,%d) ref score=%d end=(%d,%d)\n",
                    iter, m, n, simd::isa_name(isa), static_cast<int>(w), scheme, gm,
                    tb, got.score, got.end_query, got.end_ref, ref.score,
                    ref.end_query, ref.end_ref);
                return 1;
              }
              if (cfg.traceback && got.score > 0) {
                int rs = core::replay_score(q, r, cfg, got);
                if (rs != got.score) {
                  std::printf("TB REPLAY MISMATCH iter=%d isa=%s w=%d: replay=%d score=%d cigar=%s\n",
                              iter, simd::isa_name(isa), static_cast<int>(w), rs,
                              got.score, got.cigar.to_string().c_str());
                  return 1;
                }
              }
              ++checked;
            }
        }
  }
  std::printf("smoke OK: %d kernel results matched golden\n", checked);
  if (int rc = smoke_baselines()) return rc;
  if (int rc = smoke_batch32()) return rc;
  return 0;
}
