// Component-cost probe for the diag kernel: long square pair (no ragged
// cost) vs database streaming; widths; schemes; ISAs. When perf_event is
// usable, each config also reports hardware-counter attribution for the
// 2048x2048 run (IPC, backend-stall fraction, effective GHz); otherwise
// those columns print "-".
#include <cstdio>

#include "core/dispatch.hpp"
#include "obs/pmu.hpp"
#include "perf/gcups.hpp"
#include "perf/timer.hpp"
#include "seq/synthetic.hpp"

using namespace swve;

struct RunResult {
  double gcups = 0;
  obs::PmuDelta pmu{};
};

static RunResult run(const seq::Sequence& q, const seq::Sequence& t,
                     core::AlignConfig cfg, core::Workspace& ws, int reps) {
  core::diag_align(q, t, cfg, ws);
  obs::PmuSession& pmu = obs::PmuSession::instance();
  obs::PmuReading start = pmu.read();
  perf::Stopwatch sw;
  for (int k = 0; k < reps; ++k) core::diag_align(q, t, cfg, ws);
  double seconds = sw.seconds();
  RunResult r;
  r.pmu = obs::PmuSession::delta(start, pmu.read());
  r.gcups = perf::gcups(
      static_cast<uint64_t>(q.length()) * t.length() * reps, seconds);
  return r;
}

int main() {
  core::Workspace ws;
  auto q = seq::generate_sequence(1, 2048);
  auto t = seq::generate_sequence(2, 2048);
  auto t_small = seq::generate_sequence(3, 300);

  struct Cfg {
    const char* name;
    simd::Isa isa;
    core::Width w;
    core::ScoreScheme s;
  };
  const Cfg cfgs[] = {
      {"avx2 w16 matrix", simd::Isa::Avx2, core::Width::W16, core::ScoreScheme::Matrix},
      {"avx2 w16 fixed ", simd::Isa::Avx2, core::Width::W16, core::ScoreScheme::Fixed},
      {"avx2 w8  matrix", simd::Isa::Avx2, core::Width::W8, core::ScoreScheme::Matrix},
      {"avx2 w8  fixed ", simd::Isa::Avx2, core::Width::W8, core::ScoreScheme::Fixed},
      {"avx2 w32 matrix", simd::Isa::Avx2, core::Width::W32, core::ScoreScheme::Matrix},
      {"a512 w16 matrix", simd::Isa::Avx512, core::Width::W16, core::ScoreScheme::Matrix},
      {"a512 w8  matrix", simd::Isa::Avx512, core::Width::W8, core::ScoreScheme::Matrix},
      {"a512 w8  fixed ", simd::Isa::Avx512, core::Width::W8, core::ScoreScheme::Fixed},
  };
  obs::PmuSession& pmu = obs::PmuSession::instance();
  if (!pmu.available())
    std::printf("pmu: unavailable (%s); counter columns print \"-\"\n",
                pmu.unavailable_reason());
  std::printf("%-18s %10s %10s %6s %8s %7s\n", "config", "2048x2048",
              "2048x300", "ipc", "be-stall", "GHz");
  for (const Cfg& c : cfgs) {
    core::AlignConfig cfg;
    cfg.isa = c.isa;
    cfg.width = c.w;
    cfg.scheme = c.s;
    cfg.match = 5;
    cfg.mismatch = -2;
    RunResult big = run(q, t, cfg, ws, 3);
    RunResult small = run(q, t_small, cfg, ws, 20);
    if (big.pmu.hw && big.pmu.cycles > 0) {
      std::printf("%-18s %10.2f %10.2f %6.2f %7.1f%% %7.2f\n", c.name,
                  big.gcups, small.gcups, big.pmu.ipc(),
                  100.0 * big.pmu.backend_stall_fraction(),
                  big.pmu.effective_ghz());
    } else {
      std::printf("%-18s %10.2f %10.2f %6s %8s %7s\n", c.name, big.gcups,
                  small.gcups, "-", "-", "-");
    }
  }
  return 0;
}
