// Component-cost probe for the diag kernel: long square pair (no ragged
// cost) vs database streaming; widths; schemes; ISAs. When perf_event is
// usable, each config also reports hardware-counter attribution for the
// 2048x2048 run (IPC, backend-stall fraction, effective GHz); otherwise
// those columns print "-".
//
// Also sweeps the batch kernel's interleave depth: `--ilp=1,2,4` picks the
// depths, `--json` emits machine-readable rows (GCUPS, IPC, backend-stall %
// per ISA x K) instead of the tables — the bench-smoke CI artifact.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/batch32.hpp"
#include "core/dispatch.hpp"
#include "obs/pmu.hpp"
#include "perf/gcups.hpp"
#include "perf/timer.hpp"
#include "seq/database.hpp"
#include "seq/synthetic.hpp"
#include "simd/cpu.hpp"

using namespace swve;

struct RunResult {
  double gcups = 0;
  obs::PmuDelta pmu{};
};

static RunResult run(const seq::Sequence& q, const seq::Sequence& t,
                     core::AlignConfig cfg, core::Workspace& ws, int reps) {
  core::diag_align(q, t, cfg, ws);
  obs::PmuSession& pmu = obs::PmuSession::instance();
  obs::PmuReading start = pmu.read();
  perf::Stopwatch sw;
  for (int k = 0; k < reps; ++k) core::diag_align(q, t, cfg, ws);
  double seconds = sw.seconds();
  RunResult r;
  r.pmu = obs::PmuSession::delta(start, pmu.read());
  r.gcups = perf::gcups(
      static_cast<uint64_t>(q.length()) * t.length() * reps, seconds);
  return r;
}

struct IlpRow {
  const char* isa_name;
  int lanes;
  int k;
  double gcups = 0;
  obs::PmuDelta pmu{};
};

/// Time the batch kernel over a synthetic packed database at each requested
/// interleave depth, per available batch ISA (same batches, same query —
/// only the number of in-flight dependency chains varies).
static std::vector<IlpRow> sweep_interleave(const std::vector<int>& depths) {
  seq::SyntheticConfig scfg;
  scfg.seed = 11;
  scfg.target_residues = 400'000;
  scfg.min_length = 100;
  scfg.max_length = 400;
  const seq::SequenceDatabase db = seq::SequenceDatabase::synthetic(scfg);
  const seq::Sequence q = seq::generate_sequence(1, 256);
  core::AlignConfig cfg;
  core::Workspace ws;
  obs::PmuSession& pmu = obs::PmuSession::instance();

  struct IsaCase {
    const char* name;
    simd::Isa isa;
    int lanes;
  };
  std::vector<IsaCase> cases = {{"scalar", simd::Isa::Scalar, 32}};
  if (simd::isa_available(simd::Isa::Avx2))
    cases.push_back({"avx2", simd::Isa::Avx2, 32});
  if (simd::isa_available(simd::Isa::Avx512) && simd::cpu_features().avx512vbmi)
    cases.push_back({"avx512", simd::Isa::Avx512, 64});

  std::vector<IlpRow> rows;
  for (const IsaCase& c : cases) {
    core::Batch32Db bdb(db, c.lanes);
    std::vector<core::BatchCols> cols(bdb.batch_count());
    for (size_t b = 0; b < bdb.batch_count(); ++b) {
      const core::Batch32Db::Batch batch = bdb.batch(b);
      cols[b] = core::BatchCols{batch.columns, batch.max_len};
    }
    std::vector<core::Batch8Result> out(bdb.batch_count());
    const uint64_t cells_per_pass = bdb.padded_residues() * q.length();
    // Keep the sweep quick for the scalar reference, thorough for SIMD.
    const int reps = c.isa == simd::Isa::Scalar ? 1 : 6;
    for (int k : depths) {
      auto pass = [&] {
        core::batch32_align_u8_group(q, cols.data(),
                                     static_cast<int>(cols.size()), c.lanes,
                                     cfg, ws, c.isa, k, out.data());
      };
      pass();  // warm-up
      obs::PmuReading start = pmu.read();
      perf::Stopwatch sw;
      for (int r = 0; r < reps; ++r) pass();
      const double seconds = sw.seconds();
      IlpRow row;
      row.isa_name = c.name;
      row.lanes = c.lanes;
      row.k = k;
      row.pmu = obs::PmuSession::delta(start, pmu.read());
      row.gcups = perf::gcups(cells_per_pass * static_cast<uint64_t>(reps),
                              seconds);
      rows.push_back(row);
    }
  }
  return rows;
}

static void print_ilp_json(const std::vector<IlpRow>& rows) {
  std::printf("{\"prefetch_cols\":%u,\"rows\":[\n",
              core::batch_prefetch_distance());
  for (size_t i = 0; i < rows.size(); ++i) {
    const IlpRow& r = rows[i];
    std::printf("{\"kernel\":\"batch32\",\"isa\":\"%s\",\"lanes\":%d,"
                "\"ilp\":%d,\"gcups\":%.3f,\"pmu\":%s,\"ipc\":%.3f,"
                "\"backend_stall_pct\":%.2f,\"eff_ghz\":%.3f}%s\n",
                r.isa_name, r.lanes, r.k, r.gcups,
                r.pmu.hw ? "true" : "false", r.pmu.ipc(),
                100.0 * r.pmu.backend_stall_fraction(),
                r.pmu.effective_ghz(), i + 1 < rows.size() ? "," : "");
  }
  std::printf("]}\n");
}

static void print_ilp_table(const std::vector<IlpRow>& rows) {
  std::printf("\nbatch32 interleave sweep (prefetch %u cols)\n",
              core::batch_prefetch_distance());
  std::printf("%-8s %6s %4s %10s %6s %8s %7s\n", "isa", "lanes", "K", "GCUPS",
              "ipc", "be-stall", "GHz");
  for (const IlpRow& r : rows) {
    if (r.pmu.hw && r.pmu.cycles > 0) {
      std::printf("%-8s %6d %4d %10.2f %6.2f %7.1f%% %7.2f\n", r.isa_name,
                  r.lanes, r.k, r.gcups, r.pmu.ipc(),
                  100.0 * r.pmu.backend_stall_fraction(),
                  r.pmu.effective_ghz());
    } else {
      std::printf("%-8s %6d %4d %10.2f %6s %8s %7s\n", r.isa_name, r.lanes,
                  r.k, r.gcups, "-", "-", "-");
    }
  }
}

int main(int argc, char** argv) {
  std::vector<int> depths = {1, 2, 4};
  bool json = false;
  bool ilp_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      ilp_only = true;
    } else if (std::strncmp(argv[i], "--ilp=", 6) == 0) {
      ilp_only = true;
      depths.clear();
      for (const char* p = argv[i] + 6; *p != '\0';) {
        depths.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (std::strncmp(argv[i], "--prefetch=", 11) == 0) {
      core::set_batch_prefetch_distance(
          static_cast<uint32_t>(std::atoi(argv[i] + 11)));
    } else {
      std::fprintf(stderr,
                   "usage: kernel_profile [--ilp=1,2,4] [--prefetch=N] "
                   "[--json]\n");
      return 2;
    }
  }
  if (ilp_only) {
    const std::vector<IlpRow> rows = sweep_interleave(depths);
    if (json)
      print_ilp_json(rows);
    else
      print_ilp_table(rows);
    return 0;
  }

  core::Workspace ws;
  auto q = seq::generate_sequence(1, 2048);
  auto t = seq::generate_sequence(2, 2048);
  auto t_small = seq::generate_sequence(3, 300);

  struct Cfg {
    const char* name;
    simd::Isa isa;
    core::Width w;
    core::ScoreScheme s;
  };
  const Cfg cfgs[] = {
      {"avx2 w16 matrix", simd::Isa::Avx2, core::Width::W16, core::ScoreScheme::Matrix},
      {"avx2 w16 fixed ", simd::Isa::Avx2, core::Width::W16, core::ScoreScheme::Fixed},
      {"avx2 w8  matrix", simd::Isa::Avx2, core::Width::W8, core::ScoreScheme::Matrix},
      {"avx2 w8  fixed ", simd::Isa::Avx2, core::Width::W8, core::ScoreScheme::Fixed},
      {"avx2 w32 matrix", simd::Isa::Avx2, core::Width::W32, core::ScoreScheme::Matrix},
      {"a512 w16 matrix", simd::Isa::Avx512, core::Width::W16, core::ScoreScheme::Matrix},
      {"a512 w8  matrix", simd::Isa::Avx512, core::Width::W8, core::ScoreScheme::Matrix},
      {"a512 w8  fixed ", simd::Isa::Avx512, core::Width::W8, core::ScoreScheme::Fixed},
  };
  obs::PmuSession& pmu = obs::PmuSession::instance();
  if (!pmu.available())
    std::printf("pmu: unavailable (%s); counter columns print \"-\"\n",
                pmu.unavailable_reason());
  std::printf("%-18s %10s %10s %6s %8s %7s\n", "config", "2048x2048",
              "2048x300", "ipc", "be-stall", "GHz");
  for (const Cfg& c : cfgs) {
    core::AlignConfig cfg;
    cfg.isa = c.isa;
    cfg.width = c.w;
    cfg.scheme = c.s;
    cfg.match = 5;
    cfg.mismatch = -2;
    RunResult big = run(q, t, cfg, ws, 3);
    RunResult small = run(q, t_small, cfg, ws, 20);
    if (big.pmu.hw && big.pmu.cycles > 0) {
      std::printf("%-18s %10.2f %10.2f %6.2f %7.1f%% %7.2f\n", c.name,
                  big.gcups, small.gcups, big.pmu.ipc(),
                  100.0 * big.pmu.backend_stall_fraction(),
                  big.pmu.effective_ghz());
    } else {
      std::printf("%-18s %10.2f %10.2f %6s %8s %7s\n", c.name, big.gcups,
                  small.gcups, "-", "-", "-");
    }
  }
  print_ilp_table(sweep_interleave(depths));
  return 0;
}
