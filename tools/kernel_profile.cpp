// Component-cost probe for the diag kernel: long square pair (no ragged
// cost) vs database streaming; widths; schemes; ISAs.
#include <cstdio>

#include "core/dispatch.hpp"
#include "perf/gcups.hpp"
#include "perf/timer.hpp"
#include "seq/synthetic.hpp"

using namespace swve;

static double run(const seq::Sequence& q, const seq::Sequence& t, core::AlignConfig cfg,
                  core::Workspace& ws, int reps) {
  core::diag_align(q, t, cfg, ws);
  perf::Stopwatch sw;
  for (int k = 0; k < reps; ++k) core::diag_align(q, t, cfg, ws);
  return perf::gcups(static_cast<uint64_t>(q.length()) * t.length() * reps,
                     sw.seconds());
}

int main() {
  core::Workspace ws;
  auto q = seq::generate_sequence(1, 2048);
  auto t = seq::generate_sequence(2, 2048);
  auto t_small = seq::generate_sequence(3, 300);

  struct Cfg {
    const char* name;
    simd::Isa isa;
    core::Width w;
    core::ScoreScheme s;
  };
  const Cfg cfgs[] = {
      {"avx2 w16 matrix", simd::Isa::Avx2, core::Width::W16, core::ScoreScheme::Matrix},
      {"avx2 w16 fixed ", simd::Isa::Avx2, core::Width::W16, core::ScoreScheme::Fixed},
      {"avx2 w8  matrix", simd::Isa::Avx2, core::Width::W8, core::ScoreScheme::Matrix},
      {"avx2 w8  fixed ", simd::Isa::Avx2, core::Width::W8, core::ScoreScheme::Fixed},
      {"avx2 w32 matrix", simd::Isa::Avx2, core::Width::W32, core::ScoreScheme::Matrix},
      {"a512 w16 matrix", simd::Isa::Avx512, core::Width::W16, core::ScoreScheme::Matrix},
      {"a512 w8  matrix", simd::Isa::Avx512, core::Width::W8, core::ScoreScheme::Matrix},
      {"a512 w8  fixed ", simd::Isa::Avx512, core::Width::W8, core::ScoreScheme::Fixed},
  };
  std::printf("%-18s %10s %10s\n", "config", "2048x2048", "2048x300");
  for (const Cfg& c : cfgs) {
    core::AlignConfig cfg;
    cfg.isa = c.isa;
    cfg.width = c.w;
    cfg.scheme = c.s;
    cfg.match = 5;
    cfg.mismatch = -2;
    double big = run(q, t, cfg, ws, 3);
    double small = run(q, t_small, cfg, ws, 20);
    std::printf("%-18s %10.2f %10.2f\n", c.name, big, small);
  }
  return 0;
}
