// Fig 10: performance improvement from GA compiler-hyperparameter tuning,
// per architecture and query size.
//
// Default: the deterministic simulated response surface (DESIGN.md §4,
// substitution 4) with four "architectures" standing in for the paper's
// Haswell / Broadwell / Skylake / Cascade Lake. Pass --real to drive the GA
// with the actual gcc+dlopen evaluator on this machine (slow, one
// compilation per evaluation).
//
// Paper finding: ~10% average improvement, up to ~50%, strongly query-size
// dependent and uneven across architectures.
#include "bench_common.hpp"
#include "tune/evaluator.hpp"
#include "tune/ga.hpp"

using namespace swve;
using bench::BenchArgs;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  bench::print_environment();
  tune::FlagSpace space = tune::FlagSpace::gcc_with_runtime();

  if (args.real_tuner) {
    perf::print_banner(std::cout, "Fig 10 (REAL gcc evaluator): GA over GCC flags");
    tune::GccEvaluator::Options opt;
    opt.query_size = 256;
    opt.db_size = 1 << 14;
    tune::GccEvaluator eval(space, opt);
    if (!eval.available()) {
      std::cout << "gcc+dlopen unavailable in this environment; rerun without --real\n";
      return 0;
    }
    tune::GaParams p;
    p.population = 10;
    p.generations = args.quick ? 3 : 6;
    tune::GaResult res = tune::run_ga(space, eval, p);
    std::cout << "baseline (plain -O3): " << perf::Table::num(res.baseline_fitness, 3)
              << " GCUPS\nbest: " << perf::Table::num(res.best_fitness, 3)
              << " GCUPS  (+" << perf::Table::percent(res.improvement()) << ")\n"
              << "flags: " << space.to_string(res.best) << "\n";
    return 0;
  }

  perf::print_banner(std::cout,
                     "Fig 10: GA tuning improvement by architecture and query size");
  const char* arch_names[] = {"haswell", "broadwell", "skylake", "cascadelake"};
  const uint64_t arch_seeds[] = {1001, 1002, 1003, 1004};
  std::vector<int> query_sizes = {64, 128, 256, 512, 1024, 2048};
  if (args.quick) query_sizes = {128, 1024};

  perf::Table table([&] {
    std::vector<std::string> h = {"arch"};
    for (int qs : query_sizes) h.push_back("q=" + std::to_string(qs));
    h.push_back("mean");
    return h;
  }());

  std::vector<double> all;
  for (int a = 0; a < 4; ++a) {
    std::vector<std::string> row = {arch_names[a]};
    double sum = 0;
    for (int qs : query_sizes) {
      tune::SimulatedEvaluator eval(space, arch_seeds[a], qs);
      tune::GaParams p;
      p.seed = arch_seeds[a] * 13 + static_cast<uint64_t>(qs);
      p.population = args.quick ? 12 : 24;
      p.generations = args.quick ? 6 : 14;
      tune::GaResult res = tune::run_ga(space, eval, p);
      double imp = res.improvement();
      all.push_back(imp);
      sum += imp;
      row.push_back(perf::Table::percent(imp));
    }
    row.push_back(perf::Table::percent(sum / static_cast<double>(query_sizes.size())));
    table.row(row);
  }
  table.print(std::cout);

  double mean = 0, mx = 0;
  for (double x : all) {
    mean += x;
    mx = std::max(mx, x);
  }
  mean /= static_cast<double>(all.size());
  std::cout << "\nmean improvement " << perf::Table::percent(mean) << ", max "
            << perf::Table::percent(mx)
            << "  (paper: ~10% average, up to ~50%, query-size dependent)\n";
  return 0;
}
