// Fig 14: head-to-head with the Parasail-style kernels on 10 queries.
//
// Columns: this paper's diagonal kernel (adaptive 8/16-bit, the production
// configuration) against from-scratch implementations of parasail's three
// SW families: diag (classic wavefront), scan (prefix-max), striped
// (Farrar + lazy-F). Paper result on its testbeds: ours 3.9x vs diag,
// 1.9x vs scan, 1.5x vs striped — with the added benefit that our runtime
// is deterministic while striped's correction loop is data dependent
// (lazy-F iteration counts are printed as evidence).
#include "baseline/diag_basic.hpp"
#include "baseline/scan.hpp"
#include "baseline/striped.hpp"
#include "bench_common.hpp"
#include "core/workspace.hpp"

using namespace swve;
using bench::BenchArgs;
using bench::Workload;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  Workload w = Workload::make(args);
  bench::print_environment();
  if (!simd::isa_available(simd::Isa::Avx2)) {
    std::cout << "fig14 requires AVX2 (baseline kernels)\n";
    return 0;
  }
  perf::print_banner(std::cout,
                     "Fig 14: ours (diag, adaptive 8/16) vs parasail-style kernels, GCUPS");

  core::Workspace ws;
  core::AlignConfig cfg;  // BLOSUM62, affine 11/1, adaptive width

  perf::Table t({"query", "len", "ours", "striped", "scan", "diag", "ours/striped",
                 "ours/scan", "ours/diag"});
  std::vector<double> r_striped, r_scan, r_diag;
  uint64_t lazy_total = 0;

  for (const auto& q : w.queries) {
    double g_ours = bench::time_gcups(q, w.db, [&](const auto& qq, const auto& tt) {
      core::diag_align(qq, tt, cfg, ws);
    });

    baseline::StripedAligner striped(q, cfg);
    double g_striped = bench::time_gcups(q, w.db, [&](const auto&, const auto& tt) {
      auto res = striped.align(tt, ws);
      (void)res;
    });
    // lazy-F evidence, one extra pass:
    for (size_t s = 0; s < std::min<size_t>(w.db.size(), 50); ++s)
      lazy_total += striped.align16(w.db[s], ws).lazy_f_iterations;

    baseline::ScanAligner scan(q, cfg);
    double g_scan = bench::time_gcups(q, w.db, [&](const auto&, const auto& tt) {
      scan.align(tt, ws);
    });

    baseline::DiagBasicAligner diag(q, cfg);
    double g_diag = bench::time_gcups(q, w.db, [&](const auto&, const auto& tt) {
      diag.align(tt, ws);
    });

    r_striped.push_back(g_ours / g_striped);
    r_scan.push_back(g_ours / g_scan);
    r_diag.push_back(g_ours / g_diag);
    t.row({q.id(), std::to_string(q.length()), perf::Table::num(g_ours, 2),
           perf::Table::num(g_striped, 2), perf::Table::num(g_scan, 2),
           perf::Table::num(g_diag, 2), perf::Table::num(g_ours / g_striped, 2),
           perf::Table::num(g_ours / g_scan, 2),
           perf::Table::num(g_ours / g_diag, 2)});
  }
  t.print(std::cout);

  std::cout << "\ngeomean speedups  vs striped: "
            << perf::Table::num(bench::geomean(r_striped), 2)
            << "   vs scan: " << perf::Table::num(bench::geomean(r_scan), 2)
            << "   vs diag: " << perf::Table::num(bench::geomean(r_diag), 2) << "\n"
            << "paper reports    vs striped: 1.5    vs scan: 1.9    vs diag: 3.9\n"
            << "striped lazy-F iterations observed (data-dependent work): " << lazy_total
            << "\n";
  return 0;
}
