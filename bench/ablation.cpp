// Ablation study of the paper's design choices (DESIGN.md calls these out):
//   * score delivery: gather (Fig 4) vs scalar fill vs VBMI shuffle;
//   * integer width: 8 vs 16 vs 32 bit, and the adaptive ladder;
//   * ISA width: SSE4.1 vs AVX2 vs AVX-512 vs portable scalar;
//   * the classic wavefront (diag_basic: scalar score staging + per-diagonal
//     reductions + no adaptive width) as the fully-ablated endpoint;
//   * banding as a cell-count reduction.
#include "baseline/diag_basic.hpp"
#include "bench_common.hpp"
#include "core/workspace.hpp"

using namespace swve;
using bench::BenchArgs;
using bench::Workload;

namespace {

double bench_cfg(const Workload& w, const seq::Sequence& q, core::AlignConfig cfg,
                 core::Workspace& ws) {
  return bench::time_gcups(q, w.db, [&](const auto& qq, const auto& tt) {
    core::diag_align(qq, tt, cfg, ws);
  });
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  Workload w = Workload::make(args);
  bench::print_environment();
  core::Workspace ws;
  const seq::Sequence& q = w.queries[w.queries.size() / 2];
  std::cout << "workload: query " << q.length() << " aa vs "
            << w.db.total_residues() << " residues (BLOSUM62, affine 11/1)\n";

  perf::print_banner(std::cout, "Ablation 1: score delivery (16-bit, auto ISA)");
  {
    perf::Table t({"delivery", "GCUPS", "vs auto"});
    core::AlignConfig base;
    base.width = core::Width::W16;
    double g_auto = bench_cfg(w, q, base, ws);
    for (auto [name, d] :
         std::initializer_list<std::pair<const char*, core::ScoreDelivery>>{
             {"auto (calibrated)", core::ScoreDelivery::Auto},
             {"gather (vpgatherdd)", core::ScoreDelivery::Gather},
             {"fill (scalar staging)", core::ScoreDelivery::Fill},
             {"shuffle (vpermi2b)", core::ScoreDelivery::Shuffle}}) {
      core::AlignConfig cfg = base;
      cfg.delivery = d;
      double g = bench_cfg(w, q, cfg, ws);
      t.row({name, perf::Table::num(g, 2), perf::Table::num(g / g_auto, 2)});
    }
    t.print(std::cout);
  }

  perf::print_banner(std::cout, "Ablation 2: integer width (auto ISA, auto delivery)");
  {
    perf::Table t({"width", "GCUPS"});
    for (auto [name, width] :
         std::initializer_list<std::pair<const char*, core::Width>>{
             {"8-bit", core::Width::W8},
             {"16-bit", core::Width::W16},
             {"32-bit", core::Width::W32},
             {"adaptive 8/16/32", core::Width::Adaptive}}) {
      core::AlignConfig cfg;
      cfg.width = width;
      t.row({name, perf::Table::num(bench_cfg(w, q, cfg, ws), 2)});
    }
    t.print(std::cout);
  }

  perf::print_banner(std::cout, "Ablation 3: ISA (adaptive width)");
  {
    perf::Table t({"isa", "GCUPS"});
    for (simd::Isa isa : {simd::Isa::Scalar, simd::Isa::Sse41, simd::Isa::Avx2,
                          simd::Isa::Avx512}) {
      if (!simd::isa_available(isa)) continue;
      core::AlignConfig cfg;
      cfg.isa = isa;
      t.row({simd::isa_name(isa), perf::Table::num(bench_cfg(w, q, cfg, ws), 2)});
    }
    t.print(std::cout);
  }

  perf::print_banner(std::cout,
                     "Ablation 4: fully-ablated classic wavefront (diag_basic)");
  if (simd::isa_available(simd::Isa::Avx2)) {
    core::AlignConfig cfg;
    double g_ours = bench_cfg(w, q, cfg, ws);
    baseline::DiagBasicAligner diag(q, cfg);
    double g_basic = bench::time_gcups(q, w.db, [&](const auto&, const auto& tt) {
      diag.align(tt, ws);
    });
    perf::Table t({"kernel", "GCUPS", "speedup"});
    t.row({"ours (all optimizations)", perf::Table::num(g_ours, 2),
           perf::Table::num(g_ours / g_basic, 2)});
    t.row({"classic wavefront", perf::Table::num(g_basic, 2), "1.00"});
    t.print(std::cout);
  }

  perf::print_banner(std::cout, "Ablation 5: banding (adaptive width)");
  {
    perf::Table t({"band", "GCUPS (wall)", "cells vs full"});
    core::AlignConfig cfg;
    uint64_t full_cells = 0;
    {
      core::Alignment a = core::diag_align(q, w.db[0], cfg, ws);
      full_cells = q.length() * w.db.total_residues();
      (void)a;
    }
    for (int band : {-1, 256, 64, 16}) {
      cfg.band = band;
      uint64_t cells = 0;
      perf::Stopwatch sw;
      for (size_t s = 0; s < w.db.size(); ++s)
        cells += core::diag_align(q, w.db[s], cfg, ws).stats.cells;
      double g = perf::gcups(q.length() * w.db.total_residues(), sw.seconds());
      t.row({band < 0 ? "full" : std::to_string(band), perf::Table::num(g, 2),
             perf::Table::percent(static_cast<double>(cells) /
                                  static_cast<double>(full_cells))});
    }
    t.print(std::cout);
    std::cout << "(GCUPS counts the full matrix: banding trades cells for wall time)\n";
  }
  return 0;
}
