// google-benchmark microbenchmarks of the individual kernels: the numbers
// behind every figure, at kernel granularity (ISA x width x scheme), plus
// the batch32 and baseline kernels.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "baseline/diag_basic.hpp"
#include "baseline/scan.hpp"
#include "baseline/striped.hpp"
#include "core/batch32.hpp"
#include "core/dispatch.hpp"
#include "seq/synthetic.hpp"
#include "simd/cpu.hpp"

using namespace swve;

namespace {

core::Workspace& tls_ws() {
  static thread_local core::Workspace ws;
  return ws;
}

const seq::Sequence& bench_query(int len) {
  static std::map<int, seq::Sequence> cache;
  auto it = cache.find(len);
  if (it == cache.end())
    it = cache.emplace(len, seq::generate_sequence(7, static_cast<uint32_t>(len))).first;
  return it->second;
}

const seq::Sequence& bench_target() {
  static const seq::Sequence t = seq::generate_sequence(8, 2000);
  return t;
}

void report_cells(benchmark::State& state, uint64_t cells_per_iter) {
  state.counters["GCUPS"] = benchmark::Counter(
      static_cast<double>(cells_per_iter) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

void BM_DiagKernel(benchmark::State& state, simd::Isa isa, core::Width width,
                   core::ScoreScheme scheme) {
  if (!simd::isa_available(isa)) {
    state.SkipWithError("ISA unavailable");
    return;
  }
  const seq::Sequence& q = bench_query(static_cast<int>(state.range(0)));
  const seq::Sequence& t = bench_target();
  core::AlignConfig cfg;
  cfg.isa = isa;
  cfg.width = width;
  cfg.scheme = scheme;
  cfg.match = 5;
  cfg.mismatch = -2;
  for (auto _ : state) {
    core::Alignment a = core::diag_align(q, t, cfg, tls_ws());
    benchmark::DoNotOptimize(a.score);
  }
  report_cells(state, q.length() * t.length());
}

void BM_Striped(benchmark::State& state) {
  if (!simd::isa_available(simd::Isa::Avx2)) {
    state.SkipWithError("needs AVX2");
    return;
  }
  const seq::Sequence& q = bench_query(static_cast<int>(state.range(0)));
  const seq::Sequence& t = bench_target();
  baseline::StripedAligner striped(q, core::AlignConfig{});
  for (auto _ : state) {
    core::Alignment a = striped.align(t, tls_ws());
    benchmark::DoNotOptimize(a.score);
  }
  report_cells(state, q.length() * t.length());
}

void BM_Scan(benchmark::State& state) {
  if (!simd::isa_available(simd::Isa::Avx2)) {
    state.SkipWithError("needs AVX2");
    return;
  }
  const seq::Sequence& q = bench_query(static_cast<int>(state.range(0)));
  const seq::Sequence& t = bench_target();
  baseline::ScanAligner scan(q, core::AlignConfig{});
  for (auto _ : state) {
    core::Alignment a = scan.align(t, tls_ws());
    benchmark::DoNotOptimize(a.score);
  }
  report_cells(state, q.length() * t.length());
}

void BM_DiagBasic(benchmark::State& state) {
  if (!simd::isa_available(simd::Isa::Avx2)) {
    state.SkipWithError("needs AVX2");
    return;
  }
  const seq::Sequence& q = bench_query(static_cast<int>(state.range(0)));
  const seq::Sequence& t = bench_target();
  baseline::DiagBasicAligner diag(q, core::AlignConfig{});
  for (auto _ : state) {
    core::Alignment a = diag.align(t, tls_ws());
    benchmark::DoNotOptimize(a.score);
  }
  report_cells(state, q.length() * t.length());
}

const seq::SequenceDatabase& bench_db() {
  static seq::SequenceDatabase db = [] {
    seq::SyntheticConfig cfg;
    cfg.seed = 9;
    cfg.target_residues = 100'000;
    cfg.min_length = 100;
    cfg.max_length = 400;
    return seq::SequenceDatabase::synthetic(cfg);
  }();
  return db;
}

void BM_Batch32(benchmark::State& state) {
  const seq::SequenceDatabase& db = bench_db();
  static core::Batch32Db bdb(db, 32);
  const seq::Sequence& q = bench_query(static_cast<int>(state.range(0)));
  core::AlignConfig cfg;
  for (auto _ : state) {
    auto scores = core::batch_scores(q, bdb, db, cfg, tls_ws());
    benchmark::DoNotOptimize(scores.data());
  }
  report_cells(state, q.length() * db.total_residues());
}

// Raw interleaved kernel at a fixed depth: no rescore ladder, no top-k, so
// the per-K delta is purely the fused column loop (the sweep behind the
// interleave-depth choice; pair with kernel_profile --ilp for PMU columns).
void BM_Batch32Ilp(benchmark::State& state, int k) {
  const seq::SequenceDatabase& db = bench_db();
  static core::Batch32Db bdb(db, 32);
  static const std::vector<core::BatchCols> cols = [] {
    std::vector<core::BatchCols> c(bdb.batch_count());
    for (size_t b = 0; b < bdb.batch_count(); ++b)
      c[b] = core::BatchCols{bdb.batch(b).columns, bdb.batch(b).max_len};
    return c;
  }();
  std::vector<core::Batch8Result> out(bdb.batch_count());
  const seq::Sequence& q = bench_query(static_cast<int>(state.range(0)));
  core::AlignConfig cfg;
  const simd::Isa isa = simd::resolve_isa(cfg.isa);
  for (auto _ : state) {
    core::batch32_align_u8_group(q, cols.data(), static_cast<int>(cols.size()),
                                 32, cfg, tls_ws(), isa, k, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  report_cells(state, q.length() * bdb.padded_residues());
}

}  // namespace

#define SWVE_REG(name, ...)                                     \
  benchmark::RegisterBenchmark(name, __VA_ARGS__)               \
      ->Arg(128)                                                \
      ->Arg(1024)                                               \
      ->Unit(benchmark::kMillisecond)

int main(int argc, char** argv) {
  using core::ScoreScheme;
  using core::Width;
  using simd::Isa;
  SWVE_REG("diag/scalar/w16", BM_DiagKernel, Isa::Scalar, Width::W16,
           ScoreScheme::Matrix);
  SWVE_REG("diag/avx2/w8", BM_DiagKernel, Isa::Avx2, Width::W8, ScoreScheme::Matrix);
  SWVE_REG("diag/avx2/w16", BM_DiagKernel, Isa::Avx2, Width::W16, ScoreScheme::Matrix);
  SWVE_REG("diag/avx2/w32", BM_DiagKernel, Isa::Avx2, Width::W32, ScoreScheme::Matrix);
  SWVE_REG("diag/avx2/w16/fixed", BM_DiagKernel, Isa::Avx2, Width::W16,
           ScoreScheme::Fixed);
  SWVE_REG("diag/avx512/w16", BM_DiagKernel, Isa::Avx512, Width::W16,
           ScoreScheme::Matrix);
  SWVE_REG("diag/avx512/w8", BM_DiagKernel, Isa::Avx512, Width::W8,
           ScoreScheme::Matrix);
  SWVE_REG("baseline/striped", BM_Striped);
  SWVE_REG("baseline/scan", BM_Scan);
  SWVE_REG("baseline/diag", BM_DiagBasic);
  SWVE_REG("batch32", BM_Batch32);
  SWVE_REG("batch32/ilp1", BM_Batch32Ilp, 1);
  SWVE_REG("batch32/ilp2", BM_Batch32Ilp, 2);
  SWVE_REG("batch32/ilp4", BM_Batch32Ilp, 4);
  // `--ilp=K` pins the interleave depth every ISA resolves to (affects the
  // batch_scores-driven "batch32" benchmark); consumed before
  // google-benchmark sees the argument list.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ilp=", 6) == 0) {
      const int k = std::atoi(argv[i] + 6);
      for (Isa isa : {Isa::Scalar, Isa::Sse41, Isa::Avx2, Isa::Avx512})
        core::set_ilp_override(isa, core::IlpPolicy::fixed(k));
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
