// Fig 12: top-down pipeline-slot analysis (VTune substitute; DESIGN.md §4,
// substitution 3).
//   (a) backend-bound split (memory vs core) with and without a
//       substitution matrix;
//   (b) pipeline-slot efficiency vs thread count for a large query;
//   (c) per-query slot efficiency.
//
// When perf_event counters are blocked (typical in containers), the model
// derives the same categories from measurable quantities:
//   * retiring  = estimated retired instructions / (4 * cycles), with
//     cycles from wall clock x the frequency measured at the SAME
//     concurrency level (the paper's own recalibration point);
//   * memory-bound = the measured slowdown of streaming the real database
//     versus re-aligning one hot-in-L1 target of equal cell count — the
//     fraction of runtime attributable to the memory hierarchy;
//   * core-bound = the remaining backend slots (gather/shuffle pressure).
//
// Paper findings to reproduce in shape: with a substitution matrix the
// kernel is core-bound; ~8% of slots memory-bound, up to ~18% without the
// matrix; more threads per core raise slot efficiency.
#include <atomic>
#include <thread>

#include "bench_common.hpp"
#include "core/workspace.hpp"
#include "perf/freq_monitor.hpp"
#include "perf/topdown.hpp"

using namespace swve;
using bench::BenchArgs;
using bench::Workload;

namespace {

// Documented per-cell instruction estimates of the 16-bit diag kernel
// (inspection of the compiled inner loop; see DESIGN.md).
constexpr double kInstrPerCellMatrix = 26.0 / 16.0;  // shuffle/fill delivery
constexpr double kInstrPerCellFixed = 15.0 / 16.0;

struct Slice {
  perf::TopDownResult td;
  uint64_t cells = 0;
};

core::AlignConfig slice_cfg(bool matrix) {
  core::AlignConfig cfg;
  cfg.width = core::Width::W16;
  cfg.scheme = matrix ? core::ScoreScheme::Matrix : core::ScoreScheme::Fixed;
  cfg.match = 5;
  cfg.mismatch = -2;
  return cfg;
}

double run_pass(const Workload& w, const seq::Sequence& q,
                const core::AlignConfig& cfg, core::Workspace& ws) {
  perf::Stopwatch sw;
  for (size_t s = 0; s < w.db.size(); ++s) core::diag_align(q, w.db[s], cfg, ws);
  return sw.seconds();
}

/// Memory share: streaming the whole database vs the same number of cells
/// against one small target that stays hot in L1.
double memory_fraction(const Workload& w, const seq::Sequence& q, bool matrix) {
  core::Workspace ws;
  core::AlignConfig cfg = slice_cfg(matrix);
  const seq::Sequence hot = seq::generate_sequence(1234, 512);
  const int hot_reps =
      static_cast<int>(w.db.total_residues() / hot.length()) + 1;
  run_pass(w, q, cfg, ws);  // warm
  const double t_stream = run_pass(w, q, cfg, ws);
  perf::Stopwatch sw;
  for (int k = 0; k < hot_reps; ++k) core::diag_align(q, hot, cfg, ws);
  const double cell_ratio = static_cast<double>(hot.length()) * hot_reps /
                            static_cast<double>(w.db.total_residues());
  const double t_hot = sw.seconds() / cell_ratio;
  return std::max(0.0, 1.0 - t_hot / t_stream);
}

Slice run_slice(const Workload& w, const seq::Sequence& q, bool matrix, int threads,
                double ghz_loaded, double mem_frac) {
  core::AlignConfig cfg = slice_cfg(matrix);
  Slice slice;
  slice.cells = q.length() * w.db.total_residues();

  auto workload = [&] {
    std::atomic<unsigned> started{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> extra;
    // Sibling threads keep the other hardware threads busy with the same
    // kernel while the measured thread runs.
    for (int t = 1; t < threads; ++t)
      extra.emplace_back([&] {
        core::Workspace ws;
        started.fetch_add(1);
        while (!stop.load(std::memory_order_relaxed))
          for (size_t s = 0; s < w.db.size() && !stop.load(); ++s)
            core::diag_align(q, w.db[s], cfg, ws);
      });
    while (started.load() < static_cast<unsigned>(threads - 1)) {}
    core::Workspace ws;
    for (size_t s = 0; s < w.db.size(); ++s) core::diag_align(q, w.db[s], cfg, ws);
    stop.store(true);
    for (auto& t : extra) t.join();
  };

  perf::ModelInputs model;
  model.instructions = static_cast<uint64_t>(
      static_cast<double>(slice.cells) *
      (matrix ? kInstrPerCellMatrix : kInstrPerCellFixed));
  model.ghz = ghz_loaded;
  model.memory_fraction = mem_frac;
  slice.td = perf::topdown_analyze(workload, model);
  return slice;
}

std::string pct(double x) { return perf::Table::percent(x); }

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  args.db_residues /= 2;  // topdown runs several slices
  Workload w = Workload::make(args);
  bench::print_environment();
  std::cout << "counter source: "
            << (perf::perf_counters_available() ? "perf_event (hardware)"
                                                : "analytical model (documented)")
            << "\n";

  const unsigned hw = simd::cpu_features().hardware_threads;
  perf::FreqScalingReport freq = perf::frequency_scaling(
      static_cast<int>(std::max(2u, hw)), args.quick ? 25 : 50);
  auto ghz_at = [&](int threads) {
    for (size_t k = 0; k < freq.threads.size(); ++k)
      if (freq.threads[k] == threads) return freq.ghz_mean[k];
    return freq.ghz_mean.back();
  };

  const seq::Sequence& large = w.queries.back();
  const double memfrac_matrix = memory_fraction(w, large, true);
  const double memfrac_fixed = memory_fraction(w, large, false);

  perf::print_banner(std::cout, "Fig 12a: backend-bound split, +/- substitution matrix");
  {
    perf::Table t({"config", "retiring", "backend", "memory-bound", "core-bound"});
    for (bool matrix : {true, false}) {
      Slice s = run_slice(w, large, matrix, 1, ghz_at(1),
                          matrix ? memfrac_matrix : memfrac_fixed);
      t.row({matrix ? "with submatrix" : "fixed score", pct(s.td.retiring),
             pct(s.td.backend_bound), pct(s.td.memory_bound), pct(s.td.core_bound)});
    }
    t.print(std::cout);
    std::cout << "(paper: submatrix => core bound dominates; 8-18% memory bound)\n";
  }

  perf::print_banner(std::cout, "Fig 12b: slot efficiency vs threads (large query)");
  {
    perf::Table t({"threads", "retiring(slot eff)", "memory-bound", "core-bound", "ipc"});
    for (int threads : {1, static_cast<int>(std::max(2u, hw))}) {
      Slice s = run_slice(w, large, true, threads, ghz_at(threads), memfrac_matrix);
      t.row({std::to_string(threads), pct(s.td.retiring), pct(s.td.memory_bound),
             pct(s.td.core_bound), perf::Table::num(s.td.ipc, 2)});
    }
    t.print(std::cout);
    std::cout << "(paper: pairing threads on cores raises slot efficiency)\n";
  }

  perf::print_banner(std::cout, "Fig 12c: slot efficiency per query (1 thread)");
  {
    perf::Table t({"query", "len", "retiring", "memory-bound", "core-bound"});
    for (const auto& q : w.queries) {
      if (q.length() < 128 && !args.quick) continue;  // small queries: noisy (paper)
      Slice s = run_slice(w, q, true, 1, ghz_at(1), memfrac_matrix);
      t.row({q.id(), std::to_string(q.length()), pct(s.td.retiring),
             pct(s.td.memory_bound), pct(s.td.core_bound)});
    }
    t.print(std::cout);
  }
  return 0;
}
