#!/usr/bin/env python3
"""Soft benchmark-regression gate for the bench-smoke CI lane.

Compares a fresh ``fig13_scenarios --json`` report against the committed
``bench/baseline.json`` and *warns* (exit 0) when a throughput metric
(GCUPS, serving QPS, dedup ratio) dropped by more than the threshold. CI
runners are noisy shared machines, so this lane never fails the build on a
slowdown -- it annotates the run so a human looks at the artifact.
Structural problems (missing file, malformed JSON, a correctness sentinel
-- ``packing/topk_identical``, ``ilp/topk_identical``,
``serve/topk_identical``, or ``db/topk_identical`` -- flipping to 0, or a
baseline metric missing from the new report) DO fail, because those are
bugs, not noise.

Usage:
    check_regression.py CURRENT.json [--baseline bench/baseline.json]
                        [--threshold 0.15] [--hard]

``--hard`` turns warnings into a non-zero exit, for local A/B runs on a
quiet machine. Stdlib only; no third-party packages.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="fresh --json report to check")
    ap.add_argument("--baseline", default="bench/baseline.json")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="fractional GCUPS drop that triggers a warning")
    ap.add_argument("--hard", action="store_true",
                    help="exit non-zero on regressions instead of warning")
    args = ap.parse_args()

    base = load(args.baseline).get("metrics", {})
    cur = load(args.current).get("metrics", {})
    if not base or not cur:
        print("error: baseline or current report has no 'metrics' object",
              file=sys.stderr)
        return 2

    # Correctness sentinels: packing policies, interleave depths, and shard
    # counts must each agree on the top-k, responses decoded off the serving
    # wire must match in-process submissions, and a search through an mmap'd
    # swve db artifact must return the owned packing's exact hits.
    for sentinel, what in (("packing/topk_identical", "policies"),
                           ("ilp/topk_identical", "interleave depths"),
                           ("shard/topk_identical", "sharded vs flat search"),
                           ("serve/topk_identical", "wire vs in-process"),
                           ("db/topk_identical", "mapped artifact vs owned")):
        if cur.get(sentinel, 1) != 1:
            print(f"FAIL: {sentinel} == 0 ({what} disagree on top-k)")
            return 1

    regressions = []
    rows = []
    for key, old in sorted(base.items()):
        # Higher-is-better throughput metrics get the warn gate; p99
        # latencies, efficiencies, and sentinels are informational.
        if not any(tag in key for tag in ("gcups", "qps", "dedup_ratio")):
            continue
        if key not in cur:
            print(f"FAIL: metric '{key}' present in baseline but missing from "
                  f"{args.current} (renamed key? refresh the baseline)")
            return 1
        new = cur[key]
        ratio = new / old if old > 0 else float("inf")
        rows.append((key, old, new, ratio))
        if old > 0 and ratio < 1.0 - args.threshold:
            regressions.append((key, old, new, ratio))

    width = max((len(k) for k, *_ in rows), default=10)
    print(f"{'metric':<{width}}  {'baseline':>9}  {'current':>9}  ratio")
    for key, old, new, ratio in rows:
        flag = "  <-- regression" if (key, old, new, ratio) in regressions else ""
        print(f"{key:<{width}}  {old:9.3f}  {new:9.3f}  {ratio:5.2f}{flag}")

    if regressions:
        for key, old, new, ratio in regressions:
            # ::warning:: renders as an annotation in GitHub Actions.
            print(f"::warning title=bench regression::{key} dropped "
                  f"{(1 - ratio) * 100:.1f}% ({old:.2f} -> {new:.2f} GCUPS)")
        print(f"\n{len(regressions)} metric(s) regressed more than "
              f"{args.threshold * 100:.0f}%"
              + ("" if args.hard else " (soft gate: not failing the build)"))
        return 1 if args.hard else 0

    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
