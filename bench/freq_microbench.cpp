// §IV-E microbenchmark: CPU-frequency stability under multi-core load.
// (The measurement behind Fig 11's recalibration.)
#include "bench_common.hpp"
#include "perf/freq_monitor.hpp"

using namespace swve;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::print_environment();
  perf::print_banner(std::cout, "CPU frequency vs concurrent busy threads");

  perf::FreqSample single = perf::measure_frequency(args.quick ? 30 : 100);
  std::cout << "single-thread effective frequency: " << perf::Table::num(single.ghz, 2)
            << " GHz";
  if (single.tsc_ghz > 0)
    std::cout << "   (invariant TSC: " << perf::Table::num(single.tsc_ghz, 2) << " GHz)";
  std::cout << "\n\n";

  const int maxt = static_cast<int>(2 * simd::cpu_features().hardware_threads);
  perf::FreqScalingReport rep =
      perf::frequency_scaling(maxt, args.quick ? 30 : 80);
  perf::Table t({"busy threads", "mean GHz", "min GHz", "drop vs 1T"});
  for (size_t i = 0; i < rep.threads.size(); ++i)
    t.row({std::to_string(rep.threads[i]), perf::Table::num(rep.ghz_mean[i], 2),
           perf::Table::num(rep.ghz_min[i], 2),
           perf::Table::percent(1.0 - rep.ghz_mean[i] / rep.ghz_mean[0])});
  t.print(std::cout);
  std::cout << "\n(paper: the frequency is not stable in multi-core mode; single-\n"
               " thread baselines must be recalibrated before judging scaling)\n";
  return 0;
}
