// Fig 9: with vs without a substitution matrix.
//
// Paper finding: the BLOSUM gather path costs real throughput versus
// constant match/mismatch scoring (gather is core-bound), with the gap
// narrowing for smaller queries; the reorganized-matrix + pack pipeline
// keeps the 8-bit width at parity with 16-bit (no 8-bit gather exists).
#include "bench_common.hpp"
#include "core/workspace.hpp"

using namespace swve;
using bench::BenchArgs;
using bench::Workload;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  Workload w = Workload::make(args);
  bench::print_environment();
  perf::print_banner(
      std::cout, "Fig 9: substitution matrix (BLOSUM62 gather) vs fixed score, per query");

  core::Workspace ws;
  auto kernel = [&](core::ScoreScheme scheme, core::Width width) {
    return [&, scheme, width](const seq::Sequence& q, const seq::Sequence& t) {
      core::AlignConfig cfg;
      cfg.scheme = scheme;
      cfg.match = 5;
      cfg.mismatch = -2;
      cfg.width = width;
      core::diag_align(q, t, cfg, ws);
    };
  };

  perf::Table table({"query", "len", "matrix16", "fixed16", "fixed/matrix",
                     "matrix8", "matrix8/matrix16"});
  std::vector<double> ratios, w8_parity;
  for (const auto& q : w.queries) {
    double gm16 = bench::time_gcups(q, w.db, kernel(core::ScoreScheme::Matrix, core::Width::W16));
    double gf16 = bench::time_gcups(q, w.db, kernel(core::ScoreScheme::Fixed, core::Width::W16));
    double gm8 = bench::time_gcups(q, w.db, kernel(core::ScoreScheme::Matrix, core::Width::W8));
    ratios.push_back(gf16 / gm16);
    w8_parity.push_back(gm8 / gm16);
    table.row({q.id(), std::to_string(q.length()), perf::Table::num(gm16, 2),
               perf::Table::num(gf16, 2), perf::Table::num(gf16 / gm16, 2),
               perf::Table::num(gm8, 2), perf::Table::num(gm8 / gm16, 2)});
  }
  table.print(std::cout);
  std::cout << "\ngeomean fixed/matrix speedup: "
            << perf::Table::num(bench::geomean(ratios), 2)
            << "  (paper: fixed-score faster; gather makes matrix mode core-bound)\n";
  std::cout << "geomean 8-bit/16-bit matrix-mode ratio: "
            << perf::Table::num(bench::geomean(w8_parity), 2)
            << "  (paper: ~parity or better after the gather+pack 8-bit path)\n";
  return 0;
}
