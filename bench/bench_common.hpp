// Shared infrastructure for the figure-reproduction benches.
//
// Every bench binary is self-contained: run with no arguments it produces
// the rows/series of its paper figure on a synthetic Swiss-Prot-like
// workload sized to finish in seconds; --db-residues / --queries / --seed
// rescale it. Output goes through perf::Table so the series are uniform.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/dispatch.hpp"
#include "perf/gcups.hpp"
#include "perf/table.hpp"
#include "perf/timer.hpp"
#include "seq/database.hpp"
#include "seq/synthetic.hpp"
#include "simd/cpu.hpp"

namespace swve::bench {

struct BenchArgs {
  uint64_t db_residues = 200'000;
  int queries = 10;
  uint32_t query_min = 64;
  uint32_t query_max = 2048;
  uint64_t seed = 42;
  bool quick = false;
  bool real_tuner = false;  // fig10: use the gcc evaluator
  std::string json_out;     // --json <path>: machine-readable results

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      std::string s = argv[i];
      auto next = [&]() -> const char* {
        return i + 1 < argc ? argv[++i] : "";
      };
      if (s == "--db-residues") a.db_residues = std::strtoull(next(), nullptr, 10);
      else if (s == "--queries") a.queries = std::atoi(next());
      else if (s == "--query-min") a.query_min = static_cast<uint32_t>(std::atoi(next()));
      else if (s == "--query-max") a.query_max = static_cast<uint32_t>(std::atoi(next()));
      else if (s == "--seed") a.seed = std::strtoull(next(), nullptr, 10);
      else if (s == "--quick") a.quick = true;
      else if (s == "--real") a.real_tuner = true;
      else if (s == "--json") a.json_out = next();
      else if (s == "--help") {
        std::cout << "options: --db-residues N --queries N --query-min N "
                     "--query-max N --seed N --quick --real --json PATH\n";
        std::exit(0);
      }
    }
    if (a.quick) {
      a.db_residues /= 4;
      a.queries = std::min(a.queries, 4);
    }
    return a;
  }
};

/// The paper's workload: a synthetic Swiss-Prot-like database plus a ladder
/// of `queries` proteins with log-spaced lengths ("10 proteins with a range
/// of lengths").
struct Workload {
  seq::SequenceDatabase db;
  std::vector<seq::Sequence> queries;

  static Workload make(const BenchArgs& a) {
    seq::SyntheticConfig cfg;
    cfg.seed = a.seed;
    cfg.target_residues = a.db_residues;
    Workload w;
    w.db = seq::SequenceDatabase::synthetic(cfg);
    w.queries = seq::make_query_ladder(a.seed + 1, a.queries, a.query_min,
                                       a.query_max);
    return w;
  }
};

/// GCUPS of `kernel(query, target)` over the whole database for one query,
/// with one warm-up pass on the first few sequences.
template <class Fn>
double time_gcups(const seq::Sequence& query, const seq::SequenceDatabase& db,
                  Fn&& kernel) {
  for (size_t s = 0; s < std::min<size_t>(db.size(), 3); ++s) kernel(query, db[s]);
  perf::Stopwatch sw;
  for (size_t s = 0; s < db.size(); ++s) kernel(query, db[s]);
  return perf::gcups(query.length() * db.total_residues(), sw.seconds());
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double lg = 0;
  for (double x : xs) lg += std::log(x);
  return std::exp(lg / static_cast<double>(xs.size()));
}

/// Machine-readable results for --json: a flat name -> value map written as
/// one JSON object. Keys are stable identifiers (e.g. "scenario2/batch32_gcups")
/// that bench/check_regression.py compares against bench/baseline.json, so
/// renaming one is a baseline-refresh event, not a cosmetic change.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  void add(const std::string& name, double value) {
    entries_.emplace_back(name, value);
  }

  /// Writes the report; no-op when `path` is empty (no --json given).
  void write(const std::string& path) const {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return;
    }
    const auto& f = simd::cpu_features();
    out << "{\n  \"bench\": \"" << bench_ << "\",\n"
        << "  \"host\": {\"avx2\": " << (f.avx2 ? "true" : "false")
        << ", \"avx512\": " << (f.avx512bw_vl ? "true" : "false")
        << ", \"hw_threads\": " << f.hardware_threads << "},\n"
        << "  \"metrics\": {\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      char num[64];
      std::snprintf(num, sizeof num, "%.6g", entries_[i].second);
      out << "    \"" << entries_[i].first << "\": " << num
          << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    out << "  }\n}\n";
    std::cout << "json report written to " << path << "\n";
  }

 private:
  std::string bench_;
  std::vector<std::pair<std::string, double>> entries_;
};

inline void print_environment() {
  const auto& f = simd::cpu_features();
  std::cout << "host: avx2=" << f.avx2 << " avx512=" << f.avx512bw_vl
            << " vbmi=" << f.avx512vbmi << " hw-threads=" << f.hardware_threads
            << "\n";
}

}  // namespace swve::bench
