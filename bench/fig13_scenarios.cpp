// Fig 13: the three Smith-Waterman usage scenarios (§II-C / §IV-G).
//   1. single query streamed against the database (threads split the db);
//   2. a batch of queries on a centralized server (batch32 kernel,
//      queries fan out across threads);
//   3. many small query/reference pairs (SW as a subroutine, reusable
//      aligner, working set in cache).
//
// Paper findings: larger queries => higher GCUPS; accumulating queries and
// batching (scenario 2) roughly doubles efficiency in some cases.
#include <random>

#include "align/batch_server.hpp"
#include "align/db_search.hpp"
#include "bench_common.hpp"

using namespace swve;
using bench::BenchArgs;
using bench::Workload;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  Workload w = Workload::make(args);
  bench::print_environment();
  const unsigned hw = simd::cpu_features().hardware_threads;
  parallel::ThreadPool pool(hw);
  core::AlignConfig cfg;  // adaptive width: the production configuration

  perf::print_banner(std::cout, "Fig 13 / scenario 1: single query vs database");
  {
    align::DatabaseSearch search(w.db, cfg);
    perf::Table t({"query", "len", "GCUPS (1 thread)", "GCUPS (" +
                                                           std::to_string(hw) +
                                                           " threads)"});
    for (const auto& q : w.queries) {
      align::SearchResult r1 = search.search(q, 10);
      align::SearchResult rn = search.search(q, 10, &pool);
      t.row({q.id(), std::to_string(q.length()), perf::Table::num(r1.gcups(), 2),
             perf::Table::num(rn.gcups(), 2)});
    }
    t.print(std::cout);
  }

  perf::print_banner(std::cout,
                     "Fig 13 / scenario 2: batched queries on a centralized server");
  {
    align::BatchServer server(w.db, cfg);
    align::DatabaseSearch search(w.db, cfg);

    // One-at-a-time processing (client waits per query)...
    perf::Stopwatch sw1;
    uint64_t cells = 0;
    for (const auto& q : w.queries) {
      search.search(q, 10, &pool);
      cells += q.length() * w.db.total_residues();
    }
    double serial_gcups = perf::gcups(cells, sw1.seconds());

    // ...vs accumulating the batch and running the batch32 kernel.
    perf::Stopwatch sw2;
    server.run(w.queries, 10, &pool);
    double batch_gcups = perf::gcups(cells, sw2.seconds());

    perf::Table t({"mode", "GCUPS", "vs one-at-a-time"});
    t.row({"one query at a time", perf::Table::num(serial_gcups, 2), "1.00"});
    t.row({"accumulated batch (batch32)", perf::Table::num(batch_gcups, 2),
           perf::Table::num(batch_gcups / serial_gcups, 2)});
    t.print(std::cout);
    std::cout << "(paper: accumulating queries before computing can ~double efficiency)\n";
  }

  perf::print_banner(std::cout, "Fig 13 / scenario 3: SW as a subroutine (small pairs)");
  {
    std::mt19937_64 rng(args.seed + 99);
    std::vector<seq::Sequence> pairs_q, pairs_r;
    const int pairs = args.quick ? 2000 : 10000;
    uint64_t cells = 0;
    for (int i = 0; i < pairs; ++i) {
      uint32_t lq = 30 + static_cast<uint32_t>(rng() % 100);
      uint32_t lr = 30 + static_cast<uint32_t>(rng() % 100);
      pairs_q.push_back(seq::generate_sequence(rng(), lq));
      pairs_r.push_back(seq::generate_sequence(rng(), lr));
      cells += static_cast<uint64_t>(lq) * lr;
    }
    core::Workspace ws;
    // Warm up, then measure the steady state (no allocation per call).
    for (int i = 0; i < 100; ++i) core::diag_align(pairs_q[0], pairs_r[0], cfg, ws);
    perf::Stopwatch sw;
    for (int i = 0; i < pairs; ++i)
      core::diag_align(pairs_q[static_cast<size_t>(i)], pairs_r[static_cast<size_t>(i)],
                       cfg, ws);
    double g = perf::gcups(cells, sw.seconds());
    double per_call_us = sw.seconds() / pairs * 1e6;
    perf::Table t({"pairs", "mean pair", "GCUPS", "us/call"});
    t.row({std::to_string(pairs), "~80x80", perf::Table::num(g, 2),
           perf::Table::num(per_call_us, 2)});
    t.print(std::cout);
  }
  return 0;
}
