// Fig 13: the three Smith-Waterman usage scenarios (§II-C / §IV-G).
//   1. single query streamed against the database (threads split the db);
//   2. a batch of queries on a centralized server (batch32 kernel,
//      queries fan out across threads);
//   3. many small query/reference pairs (SW as a subroutine, reusable
//      aligner, working set in cache).
// Plus a packing-policy comparison: the same batch search over a
// length-skewed database under DbOrder / LengthSorted / LengthBinned,
// verifying the top-k is bit-identical while GCUPS and padding differ.
//
// Paper findings: larger queries => higher GCUPS; accumulating queries and
// batching (scenario 2) roughly doubles efficiency in some cases.
//
// A serving section runs the network front door on a loopback socket:
// closed-loop QPS and p99 with a cold vs hot result cache, a singleflight
// dedup burst, and the serve/topk_identical sentinel (wire responses must
// be bit-identical to in-process submissions).
//
// A db-startup section measures what a server pays before its first
// request on each --db path: in-process packing (FASTA startup) vs mmap of
// a pre-packed swve db artifact, with a db/topk_identical sentinel proving
// the mapped view serves the same answers. Startup cost is reported
// separately from request latency everywhere — serve/db_load_ms is the
// one-time cost the serving percentiles deliberately exclude.
//
// --json PATH writes the headline numbers for bench/check_regression.py.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <random>
#include <thread>

#include "align/batch_server.hpp"
#include "align/db_search.hpp"
#include "align/sharded_search.hpp"
#include "bench_common.hpp"
#include "core/db_format.hpp"
#include "core/dispatch.hpp"
#include "core/mapped_db.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/log.hpp"
#include "service/align_service.hpp"

using namespace swve;
using bench::BenchArgs;
using bench::Workload;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  Workload w = Workload::make(args);
  bench::print_environment();
  const unsigned hw = simd::cpu_features().hardware_threads;
  parallel::ThreadPool pool(hw);
  core::AlignConfig cfg;  // adaptive width: the production configuration
  bench::JsonReport report("fig13");

  perf::print_banner(std::cout, "Fig 13 / scenario 1: single query vs database");
  {
    align::DatabaseSearch search(w.db, cfg);
    perf::Table t({"query", "len", "GCUPS (1 thread)", "GCUPS (" +
                                                           std::to_string(hw) +
                                                           " threads)"});
    std::vector<double> g1, gn;
    for (const auto& q : w.queries) {
      align::SearchResult r1 = search.search(q, 10);
      align::SearchResult rn = search.search(q, 10, &pool);
      g1.push_back(r1.gcups());
      gn.push_back(rn.gcups());
      t.row({q.id(), std::to_string(q.length()), perf::Table::num(r1.gcups(), 2),
             perf::Table::num(rn.gcups(), 2)});
    }
    t.print(std::cout);
    report.add("scenario1/diagonal_1thread_gcups_geomean", bench::geomean(g1));
    report.add("scenario1/diagonal_threaded_gcups_geomean", bench::geomean(gn));
  }

  perf::print_banner(std::cout,
                     "Fig 13 / scenario 2: batched queries on a centralized server");
  {
    align::BatchServer server(w.db, cfg);
    align::DatabaseSearch search(w.db, cfg);

    // One-at-a-time processing (client waits per query)...
    perf::Stopwatch sw1;
    uint64_t cells = 0;
    for (const auto& q : w.queries) {
      search.search(q, 10, &pool);
      cells += q.length() * w.db.total_residues();
    }
    double serial_gcups = perf::gcups(cells, sw1.seconds());

    // ...vs accumulating the batch and running the batch32 kernel.
    perf::Stopwatch sw2;
    server.run(w.queries, 10, &pool);
    double batch_gcups = perf::gcups(cells, sw2.seconds());

    perf::Table t({"mode", "GCUPS", "vs one-at-a-time"});
    t.row({"one query at a time", perf::Table::num(serial_gcups, 2), "1.00"});
    t.row({"accumulated batch (batch32)", perf::Table::num(batch_gcups, 2),
           perf::Table::num(batch_gcups / serial_gcups, 2)});
    t.print(std::cout);
    std::cout << "(paper: accumulating queries before computing can ~double efficiency)\n";
    report.add("scenario2/one_at_a_time_gcups", serial_gcups);
    report.add("scenario2/batch32_gcups", batch_gcups);
  }

  perf::print_banner(std::cout, "Fig 13 / scenario 3: SW as a subroutine (small pairs)");
  {
    std::mt19937_64 rng(args.seed + 99);
    std::vector<seq::Sequence> pairs_q, pairs_r;
    const int pairs = args.quick ? 2000 : 10000;
    uint64_t cells = 0;
    for (int i = 0; i < pairs; ++i) {
      uint32_t lq = 30 + static_cast<uint32_t>(rng() % 100);
      uint32_t lr = 30 + static_cast<uint32_t>(rng() % 100);
      pairs_q.push_back(seq::generate_sequence(rng(), lq));
      pairs_r.push_back(seq::generate_sequence(rng(), lr));
      cells += static_cast<uint64_t>(lq) * lr;
    }
    core::Workspace ws;
    // Warm up, then measure the steady state (no allocation per call).
    for (int i = 0; i < 100; ++i) core::diag_align(pairs_q[0], pairs_r[0], cfg, ws);
    perf::Stopwatch sw;
    for (int i = 0; i < pairs; ++i)
      core::diag_align(pairs_q[static_cast<size_t>(i)], pairs_r[static_cast<size_t>(i)],
                       cfg, ws);
    double g = perf::gcups(cells, sw.seconds());
    double per_call_us = sw.seconds() / pairs * 1e6;
    perf::Table t({"pairs", "mean pair", "GCUPS", "us/call"});
    t.row({std::to_string(pairs), "~80x80", perf::Table::num(g, 2),
           perf::Table::num(per_call_us, 2)});
    t.print(std::cout);
    report.add("scenario3/subroutine_gcups", g);
  }

  perf::print_banner(std::cout,
                     "Fig 13 / packing: batch search on a length-skewed database");
  {
    // Adversarial length mix for the batch32 kernel: mostly short proteins
    // plus a handful of multi-thousand-residue outliers. Packed in database
    // order, every batch containing an outlier pads all other lanes to its
    // length; length-aware packing confines that cost to the outliers' own
    // batches.
    std::mt19937_64 rng(args.seed + 7);
    std::vector<seq::Sequence> seqs;
    const int n_short = args.quick ? 400 : 1200;
    const int n_long = args.quick ? 3 : 6;
    const uint32_t long_len = args.quick ? 4000 : 6000;
    for (int i = 0; i < n_short; ++i)
      seqs.push_back(seq::generate_sequence(rng(), 40 + static_cast<uint32_t>(rng() % 90)));
    // Scatter the outliers through the database so DbOrder pays for them in
    // several different batches.
    for (int i = 0; i < n_long; ++i) {
      auto pos = seqs.begin() +
                 static_cast<std::ptrdiff_t>(rng() % (seqs.size() + 1));
      seqs.insert(pos, seq::generate_sequence(rng(), long_len));
    }
    seq::SequenceDatabase skewed(std::move(seqs));
    seq::Sequence query = seq::generate_sequence(args.seed + 8, 512);

    struct PolicyRun {
      core::PackingPolicy policy;
      double gcups = 0;
      double efficiency = 0;
    };
    std::vector<PolicyRun> runs = {{core::PackingPolicy::DbOrder},
                                   {core::PackingPolicy::LengthSorted},
                                   {core::PackingPolicy::LengthBinned}};
    std::vector<align::Hit> reference;
    bool identical = true;
    const int reps = args.quick ? 3 : 5;
    for (auto& run : runs) {
      align::DatabaseSearch search(skewed, cfg, align::SearchMode::Batch,
                                   run.policy);
      run.efficiency = search.packed_db()->packing_efficiency();
      align::SearchResult best = search.search(query, 10, &pool);  // warm-up
      if (reference.empty()) {
        reference = best.hits;
      } else if (best.hits.size() != reference.size()) {
        identical = false;
      } else {
        for (size_t i = 0; i < reference.size(); ++i)
          if (best.hits[i].seq_index != reference[i].seq_index ||
              best.hits[i].score != reference[i].score)
            identical = false;
      }
      for (int r = 0; r < reps; ++r) {
        align::SearchResult res = search.search(query, 10, &pool);
        run.gcups = std::max(run.gcups, res.gcups());
      }
    }

    perf::Table t({"packing policy", "efficiency", "GCUPS", "vs db-order"});
    for (const auto& run : runs) {
      t.row({core::packing_policy_name(run.policy),
             perf::Table::num(100.0 * run.efficiency, 1) + "%",
             perf::Table::num(run.gcups, 2),
             perf::Table::num(run.gcups / runs[0].gcups, 2)});
      std::string key = std::string("packing/") +
                        core::packing_policy_name(run.policy);
      report.add(key + "_gcups", run.gcups);
      report.add(key + "_efficiency", run.efficiency);
    }
    t.print(std::cout);
    std::cout << "top-k identical across policies: " << (identical ? "yes" : "NO")
              << "\n";
    report.add("packing/topk_identical", identical ? 1 : 0);
    if (!identical) {
      std::cerr << "FAIL: packing policies disagree on top-k\n";
      return 1;
    }
  }

  perf::print_banner(std::cout,
                     "Fig 13 / interleave: software-pipelined batch kernels");
  {
    // The same batch search under pinned interleave depths K=1/2/4 and the
    // per-ISA Auto calibration. Top-k must be bit-identical at every depth;
    // GCUPS shows what multi-batch dependency chains buy on this machine.
    const simd::Isa isa = simd::resolve_isa(cfg.isa);
    align::DatabaseSearch search(w.db, cfg, align::SearchMode::Batch);
    seq::Sequence query = seq::generate_sequence(args.seed + 21, 512);
    const int reps = args.quick ? 3 : 5;

    struct DepthRun {
      const char* name;
      core::IlpPolicy policy;
      double gcups = 0;
      int k = 0;
    };
    std::vector<DepthRun> runs = {{"k1", core::IlpPolicy::fixed(1)},
                                  {"k2", core::IlpPolicy::fixed(2)},
                                  {"k4", core::IlpPolicy::fixed(4)},
                                  {"auto", core::IlpPolicy::auto_policy()}};
    std::vector<align::Hit> reference;
    bool identical = true;
    for (auto& run : runs) {
      core::set_ilp_override(isa, run.policy);
      run.k = core::resolved_ilp(isa);
      align::SearchResult best = search.search(query, 10, &pool);  // warm-up
      if (reference.empty()) {
        reference = best.hits;
      } else if (best.hits.size() != reference.size()) {
        identical = false;
      } else {
        for (size_t i = 0; i < reference.size(); ++i)
          if (best.hits[i].seq_index != reference[i].seq_index ||
              best.hits[i].score != reference[i].score)
            identical = false;
      }
      for (int r = 0; r < reps; ++r) {
        align::SearchResult res = search.search(query, 10, &pool);
        run.gcups = std::max(run.gcups, res.gcups());
      }
    }
    core::set_ilp_override(isa, core::IlpPolicy::auto_policy());

    perf::Table t({"interleave", "K", "GCUPS", "vs k1"});
    for (const auto& run : runs) {
      t.row({run.name, std::to_string(run.k), perf::Table::num(run.gcups, 2),
             perf::Table::num(run.gcups / runs[0].gcups, 2)});
      report.add(std::string("ilp/") + run.name + "_gcups", run.gcups);
    }
    t.print(std::cout);
    std::cout << "top-k identical across depths: " << (identical ? "yes" : "NO")
              << "\n";
    report.add("ilp/auto_k", runs.back().k);
    report.add("ilp/topk_identical", identical ? 1 : 0);
    if (!identical) {
      std::cerr << "FAIL: interleave depths disagree on top-k\n";
      return 1;
    }
  }

  perf::print_banner(std::cout,
                     "Fig 13 / shard: sharded batch search vs flat fan-out");
  {
    // The same batch search split into S database shards, each scanned by
    // its own pinned pool slice into a bounded top-k heap, merged at the
    // end. The shard/topk_identical sentinel holds the tentpole claim: the
    // merge is bit-identical to the flat path for every shard count. On a
    // single-node runner S=2 still exercises the full split/merge
    // machinery (numa stays off); the GCUPS columns show what the shape
    // costs or buys without placement in play.
    align::DatabaseSearch flat(w.db, cfg, align::SearchMode::Batch);
    seq::Sequence query = seq::generate_sequence(args.seed + 34, 512);
    const int reps = args.quick ? 3 : 5;
    const size_t batches = flat.packed_db()->batch_count();

    align::SearchResult ref = flat.search(query, 10, &pool);  // warm-up
    double flat_gcups = 0;
    for (int r = 0; r < reps; ++r)
      flat_gcups =
          std::max(flat_gcups, flat.search(query, 10, &pool).gcups());

    struct ShardRun {
      int requested;
      size_t got = 0;
      double gcups = 0;
    };
    std::vector<ShardRun> runs = {{1}, {2}};
    bool identical = true;
    for (auto& run : runs) {
      align::DatabaseSearch search(w.db, cfg, align::SearchMode::Batch);
      const int s =
          static_cast<int>(std::min<size_t>(
              static_cast<size_t>(run.requested), batches));
      align::ShardOptions sopt;
      sopt.shards = s;
      if (auto ok = search.enable_sharding(sopt); !ok) {
        std::cerr << "FAIL: enable_sharding(" << s
                  << "): " << ok.error().message << "\n";
        return 1;
      }
      run.got = search.sharded() != nullptr ? search.sharded()->shard_count()
                                            : 1;
      align::SearchResult best = search.search(query, 10, &pool);  // warm-up
      if (best.hits.size() != ref.hits.size()) {
        identical = false;
      } else {
        for (size_t i = 0; i < ref.hits.size(); ++i)
          if (best.hits[i].seq_index != ref.hits[i].seq_index ||
              best.hits[i].score != ref.hits[i].score)
            identical = false;
      }
      for (int r = 0; r < reps; ++r)
        run.gcups = std::max(run.gcups, search.search(query, 10, &pool).gcups());
    }

    perf::Table t({"layout", "shards", "GCUPS", "vs flat"});
    t.row({"flat", "-", perf::Table::num(flat_gcups, 2),
           perf::Table::num(1.0, 2)});
    for (const auto& run : runs)
      t.row({"sharded", std::to_string(run.got), perf::Table::num(run.gcups, 2),
             perf::Table::num(run.gcups / flat_gcups, 2)});
    t.print(std::cout);
    std::cout << "top-k identical across shard counts: "
              << (identical ? "yes" : "NO") << "\n";
    report.add("shard/flat_gcups", flat_gcups);
    report.add("shard/s1_gcups", runs[0].gcups);
    report.add("shard/s2_gcups", runs[1].gcups);
    report.add("shard/topk_identical", identical ? 1 : 0);
    if (!identical) {
      std::cerr << "FAIL: sharded search disagrees with flat search on top-k\n";
      return 1;
    }
  }

  perf::print_banner(std::cout,
                     "Fig 13 / db startup: pre-packed artifact vs in-process packing");
  {
    // The artifact is built once (offline, tools/swve_db_build); every
    // server start thereafter mmaps it. Compare the two startup paths over
    // the same database: re-packing from parsed input is O(residues),
    // MappedDb::open is O(sequence count) — metadata views only, the
    // column bytes fault in lazily.
    const std::string art =
        "/tmp/swve_fig13_" + std::to_string(::getpid()) + ".swdb";
    core::Batch32Db packed(w.db, 32);
    perf::Stopwatch sw_build;
    auto wrote = core::write_swdb(w.db, packed, art);
    const double build_ms = sw_build.seconds() * 1e3;
    if (!wrote.ok()) {
      std::cerr << "FAIL: swdb build: " << wrote.error().message << "\n";
      return 1;
    }

    // What FASTA startup pays after parsing: encode + sort + transpose.
    perf::Stopwatch sw_pack;
    core::Batch32Db repacked(w.db, 32);
    const double pack_ms = sw_pack.seconds() * 1e3;

    auto mapped = core::MappedDb::open(art);
    if (!mapped.ok()) {
      std::cerr << "FAIL: swdb open: " << mapped.error().message << "\n";
      return 1;
    }
    const double load_ms = (*mapped)->load_seconds() * 1e3;

    // Sentinel: the mapped view must return the owned packing's exact hits.
    align::DatabaseSearch owned(w.db, cfg, align::SearchMode::Batch);
    align::DatabaseSearch viewed((*mapped)->db(), (*mapped)->batch_db(), cfg);
    bool identical = true;
    for (const auto& q : w.queries) {
      align::SearchResult a = owned.search(q, 10, &pool);
      align::SearchResult b = viewed.search(q, 10, &pool);
      if (a.hits.size() != b.hits.size()) {
        identical = false;
        continue;
      }
      for (size_t i = 0; i < a.hits.size(); ++i)
        if (a.hits[i].seq_index != b.hits[i].seq_index ||
            a.hits[i].score != b.hits[i].score)
          identical = false;
    }

    perf::Table t({"startup path", "ms", "vs re-pack"});
    t.row({"pack from parsed input (FASTA path)", perf::Table::num(pack_ms, 2),
           "1.00"});
    t.row({"mmap artifact (MappedDb::open)", perf::Table::num(load_ms, 2),
           perf::Table::num(pack_ms > 0 ? load_ms / pack_ms : 0, 3)});
    t.print(std::cout);
    std::cout << "artifact: "
              << perf::Table::num(
                     static_cast<double>(wrote.value().file_bytes) / (1 << 20),
                     2)
              << " MiB, built in " << perf::Table::num(build_ms, 2)
              << " ms (one-time, offline)\n"
              << "top-k identical mapped vs owned: "
              << (identical ? "yes" : "NO") << "\n"
              << "(packed " << repacked.batch_count() << " batches either way; "
              << "efficiency "
              << perf::Table::num(100.0 * packed.packing_efficiency(), 1)
              << "%)\n";
    report.add("db/build_ms", build_ms);
    report.add("db/pack_ms", pack_ms);
    report.add("db/load_ms", load_ms);
    report.add("db/topk_identical", identical ? 1 : 0);
    std::remove(art.c_str());
    if (!identical) {
      std::cerr << "FAIL: mapped artifact disagrees with owned packing on "
                   "top-k\n";
      return 1;
    }
  }

  perf::print_banner(std::cout,
                     "Fig 13 / serving: protocol v1 front door on loopback");
  {
    // The whole section runs with structured logging installed — the
    // production configuration — so serve/hot_qps guards the logging hot
    // path too (the accept/close/drain lines plus the per-record cost a
    // live logger adds). The sink is /dev/null: the ring/format cost is
    // what the serving path pays; the write(2) happens off-thread either
    // way.
    obs::LoggerOptions logopt;
    logopt.fd = -1;
    logopt.path = "/dev/null";
    obs::Logger logger(logopt);
    obs::Logger::install_global(&logger);

    service::ServiceOptions sopt;
    sopt.config = cfg;
    sopt.queue.executors = 2;
    sopt.queue.capacity = 1024;
    sopt.serve.port = 0;  // ephemeral
    // Telemetry knobs stay at their defaults on purpose: the time-series
    // store and SLO engine sample at 1 Hz during this scenario, so the
    // hot-QPS number below carries their (intended: negligible) overhead
    // and the regression gate would catch a sampler that got expensive.
    service::AlignService svc(w.db, sopt);
    // Cold-start is not a request latency: the packing the service just did
    // is reported on its own, so serve/p99_cold_ms below measures cache
    // misses, never the one-time database load.
    const double db_load_ms = svc.db_load_seconds() * 1e3;
    auto started = net::Server::start(svc);
    if (!started.ok()) {
      std::cerr << "FAIL: server start: " << started.error().message << "\n";
      return 1;
    }
    net::Server& server = *started.value();

    auto connect = [&server] {
      auto c = net::Client::connect("127.0.0.1", server.port());
      if (!c.ok()) {
        std::cerr << "FAIL: connect: " << c.error().message << "\n";
        std::exit(1);
      }
      return std::move(c.value());
    };
    auto client = connect();

    // Sentinel: each wire response must match the in-process submission it
    // proxies, hit for hit.
    bool identical = true;
    for (const auto& q : w.queries) {
      service::SearchRequest rq;
      rq.query = q;
      rq.options.top_k = 10;
      const auto wire = client->search(rq, net::kFlagNoCache);
      const auto local = svc.submit_search(rq).get();
      if (!wire.ok() ||
          wire.response->result.hits.size() != local.result.hits.size()) {
        identical = false;
        continue;
      }
      for (size_t i = 0; i < local.result.hits.size(); ++i)
        if (wire.response->result.hits[i].seq_index !=
                local.result.hits[i].seq_index ||
            wire.response->result.hits[i].score != local.result.hits[i].score)
          identical = false;
    }

    // Closed-loop QPS/latency over one connection: cold cycles distinct
    // queries (every request misses the LRU and runs a search), hot repeats
    // one query (every request after the first is a cache hit).
    struct LoopStats {
      double qps = 0;
      double p99_ms = 0;
    };
    auto run_loop = [&client](int n, auto&& query_for) -> LoopStats {
      std::vector<double> lat_ms;
      lat_ms.reserve(static_cast<size_t>(n));
      perf::Stopwatch wall;
      for (int i = 0; i < n; ++i) {
        service::SearchRequest rq;
        rq.query = query_for(i);
        rq.options.top_k = 10;
        perf::Stopwatch one;
        const auto r = client->search(rq);
        if (!r.ok()) {
          std::cerr << "FAIL: serve loop: " << r.error << "\n";
          std::exit(1);
        }
        lat_ms.push_back(one.seconds() * 1e3);
      }
      LoopStats s;
      s.qps = n / wall.seconds();
      std::sort(lat_ms.begin(), lat_ms.end());
      s.p99_ms = lat_ms[static_cast<size_t>(0.99 * (lat_ms.size() - 1))];
      return s;
    };

    const int cold_n = args.quick ? 32 : 128;
    const int hot_n = args.quick ? 200 : 1000;
    std::vector<seq::Sequence> cold_queries;
    for (int i = 0; i < cold_n; ++i)
      cold_queries.push_back(
          seq::generate_sequence(args.seed + 500 + static_cast<uint64_t>(i), 256));
    const seq::Sequence hot_query =
        seq::generate_sequence(args.seed + 499, 256);

    const LoopStats cold = run_loop(
        cold_n, [&](int i) { return cold_queries[static_cast<size_t>(i)]; });
    const LoopStats hot = run_loop(hot_n, [&](int) { return hot_query; });

    // Dedup burst: pause the executors, fire `burst` identical requests from
    // separate connections, and release — singleflight should run one
    // execution and coalesce the rest.
    const int burst = 8;
    const perf::MetricsSnapshot before = server.metrics();
    svc.pause();
    const seq::Sequence burst_query =
        seq::generate_sequence(args.seed + 900, 256);
    std::vector<std::thread> senders;
    std::atomic<int> burst_ok{0};
    for (int i = 0; i < burst; ++i)
      senders.emplace_back([&] {
        auto c = net::Client::connect("127.0.0.1", server.port());
        if (!c.ok()) return;
        service::SearchRequest rq;
        rq.query = burst_query;
        rq.options.top_k = 10;
        if (c.value()->search(rq).ok()) burst_ok.fetch_add(1);
      });
    const auto wait_until =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (svc.metrics().coalesced - before.coalesced <
               static_cast<uint64_t>(burst - 1) &&
           std::chrono::steady_clock::now() < wait_until)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    svc.resume();
    for (auto& t : senders) t.join();
    const perf::MetricsSnapshot after = server.metrics();
    const double dedup_ratio =
        static_cast<double>(after.coalesced - before.coalesced) / burst;

    perf::Table t({"mode", "requests", "QPS", "p99 ms"});
    t.row({"cold cache (distinct queries)", std::to_string(cold_n),
           perf::Table::num(cold.qps, 0), perf::Table::num(cold.p99_ms, 3)});
    t.row({"hot cache (repeated query)", std::to_string(hot_n),
           perf::Table::num(hot.qps, 0), perf::Table::num(hot.p99_ms, 3)});
    t.print(std::cout);
    std::cout << "db load (one-time startup, source "
              << core::db_source_name(svc.db_source()) << "): "
              << perf::Table::num(db_load_ms, 2)
              << " ms — excluded from the request latencies above\n";
    std::cout << "wire results identical to in-process: "
              << (identical ? "yes" : "NO") << "\n"
              << "dedup burst: " << burst << " identical requests, "
              << burst_ok.load() << " ok, "
              << (after.coalesced - before.coalesced) << " coalesced "
              << "(ratio " << perf::Table::num(dedup_ratio, 2) << ")\n"
              << "result cache hit rate: "
              << perf::Table::num(after.result_cache_hit_rate(), 2) << "\n";
    logger.flush();  // drain the rings so the accounting below is complete
    std::cout << "structured log: " << logger.emitted() << " records, "
              << logger.dropped_overflow() << " dropped\n";

    report.add("serve/db_load_ms", db_load_ms);
    report.add("serve/cold_qps", cold.qps);
    report.add("serve/hot_qps", hot.qps);
    report.add("serve/p99_cold_ms", cold.p99_ms);
    report.add("serve/p99_hot_ms", hot.p99_ms);
    report.add("serve/dedup_ratio", dedup_ratio);
    report.add("serve/topk_identical", identical ? 1 : 0);
    if (!identical || burst_ok.load() != burst) {
      std::cerr << "FAIL: serving front door disagrees with in-process "
                   "results or dropped burst requests\n";
      return 1;
    }
  }

  report.write(args.json_out);
  return 0;
}
