// Fig 11: thread scaling of database search, with the frequency
// recalibration of §IV-E.
//
// Paper finding: per-core throughput drops with more cores because the
// operating frequency drops, not because of memory contention; after
// recalibrating by measured frequency, scaling (including hyperthreads) is
// near-ideal — evidence the kernel is CPU bound.
#include "align/db_search.hpp"
#include "bench_common.hpp"
#include "perf/freq_monitor.hpp"

using namespace swve;
using bench::BenchArgs;
using bench::Workload;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  args.db_residues *= 2;  // threads need more work per measurement
  Workload w = Workload::make(args);
  bench::print_environment();

  const unsigned hw = simd::cpu_features().hardware_threads;
  std::vector<unsigned> counts;
  for (unsigned t = 1; t <= 2 * hw; t *= 2) counts.push_back(t);
  if (counts.back() != 2 * hw) counts.push_back(2 * hw);

  // Frequency under each concurrency level (the recalibration input).
  perf::print_banner(std::cout, "Fig 11a: effective core frequency vs busy threads");
  perf::FreqScalingReport freq =
      perf::frequency_scaling(static_cast<int>(counts.back()), args.quick ? 25 : 50);
  {
    perf::Table t({"threads", "mean GHz", "min GHz", "vs 1-thread"});
    for (size_t i = 0; i < freq.threads.size(); ++i)
      t.row({std::to_string(freq.threads[i]), perf::Table::num(freq.ghz_mean[i], 2),
             perf::Table::num(freq.ghz_min[i], 2),
             perf::Table::percent(freq.ghz_mean[i] / freq.ghz_mean[0])});
    t.print(std::cout);
  }

  perf::print_banner(std::cout,
                     "Fig 11b: database-search scaling (16-bit diag kernel, all queries)");
  core::AlignConfig cfg;
  cfg.width = core::Width::W16;
  align::DatabaseSearch search(w.db, cfg);

  auto run_at = [&](unsigned threads) {
    parallel::ThreadPool pool(threads);
    perf::Stopwatch sw;
    uint64_t cells = 0;
    for (const auto& q : w.queries) {
      align::SearchResult r = search.search(q, 10, &pool);
      cells += q.length() * w.db.total_residues();
    }
    return perf::gcups(cells, sw.seconds());
  };

  const double base = run_at(1);
  perf::Table t({"threads", "GCUPS", "speedup", "efficiency", "freq-recal eff"});
  for (size_t i = 0; i < counts.size(); ++i) {
    unsigned threads = counts[i];
    double g = run_at(threads);
    double speedup = g / base;
    // Ideal speedup is bounded by physical cores; beyond that hyperthreads
    // only fill pipeline slots.
    double ideal = std::min<double>(threads, hw);
    double eff = speedup / ideal;
    // Recalibrate by the frequency the cores actually ran at (paper §IV-E).
    double fr = 1.0;
    for (size_t k = 0; k < freq.threads.size(); ++k)
      if (freq.threads[k] == static_cast<int>(std::min(threads, hw)))
        fr = freq.ghz_mean[k] / freq.ghz_mean[0];
    double recal = speedup / (ideal * fr);
    t.row({std::to_string(threads), perf::Table::num(g, 2),
           perf::Table::num(speedup, 2), perf::Table::percent(eff),
           perf::Table::percent(recal)});
  }
  t.print(std::cout);
  std::cout << "\n(paper: recalibrated efficiency near 100% through physical cores;\n"
               " hyperthreading adds further throughput => compute bound, not memory bound)\n";
  return 0;
}
