// Fig 11: thread scaling of database search, with the frequency
// recalibration of §IV-E.
//
// Paper finding: per-core throughput drops with more cores because the
// operating frequency drops, not because of memory contention; after
// recalibrating by measured frequency, scaling (including hyperthreads) is
// near-ideal — evidence the kernel is CPU bound.
#include "align/db_search.hpp"
#include "align/sharded_search.hpp"
#include "bench_common.hpp"
#include "perf/freq_monitor.hpp"
#include "parallel/topology.hpp"

using namespace swve;
using bench::BenchArgs;
using bench::Workload;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  args.db_residues *= 2;  // threads need more work per measurement
  Workload w = Workload::make(args);
  bench::print_environment();

  const unsigned hw = simd::cpu_features().hardware_threads;
  std::vector<unsigned> counts;
  for (unsigned t = 1; t <= 2 * hw; t *= 2) counts.push_back(t);
  if (counts.back() != 2 * hw) counts.push_back(2 * hw);

  // Frequency under each concurrency level (the recalibration input).
  perf::print_banner(std::cout, "Fig 11a: effective core frequency vs busy threads");
  perf::FreqScalingReport freq =
      perf::frequency_scaling(static_cast<int>(counts.back()), args.quick ? 25 : 50);
  {
    perf::Table t({"threads", "mean GHz", "min GHz", "vs 1-thread"});
    for (size_t i = 0; i < freq.threads.size(); ++i)
      t.row({std::to_string(freq.threads[i]), perf::Table::num(freq.ghz_mean[i], 2),
             perf::Table::num(freq.ghz_min[i], 2),
             perf::Table::percent(freq.ghz_mean[i] / freq.ghz_mean[0])});
    t.print(std::cout);
  }

  perf::print_banner(std::cout,
                     "Fig 11b: database-search scaling (16-bit diag kernel, all queries)");
  core::AlignConfig cfg;
  cfg.width = core::Width::W16;
  align::DatabaseSearch search(w.db, cfg);

  auto run_at = [&](unsigned threads) {
    parallel::ThreadPool pool(threads);
    perf::Stopwatch sw;
    uint64_t cells = 0;
    for (const auto& q : w.queries) {
      align::SearchResult r = search.search(q, 10, &pool);
      cells += q.length() * w.db.total_residues();
    }
    return perf::gcups(cells, sw.seconds());
  };

  const double base = run_at(1);
  perf::Table t({"threads", "GCUPS", "speedup", "efficiency", "freq-recal eff"});
  for (size_t i = 0; i < counts.size(); ++i) {
    unsigned threads = counts[i];
    double g = run_at(threads);
    double speedup = g / base;
    // Ideal speedup is bounded by physical cores; beyond that hyperthreads
    // only fill pipeline slots.
    double ideal = std::min<double>(threads, hw);
    double eff = speedup / ideal;
    // Recalibrate by the frequency the cores actually ran at (paper §IV-E).
    double fr = 1.0;
    for (size_t k = 0; k < freq.threads.size(); ++k)
      if (freq.threads[k] == static_cast<int>(std::min(threads, hw)))
        fr = freq.ghz_mean[k] / freq.ghz_mean[0];
    double recal = speedup / (ideal * fr);
    t.row({std::to_string(threads), perf::Table::num(g, 2),
           perf::Table::num(speedup, 2), perf::Table::percent(eff),
           perf::Table::percent(recal)});
  }
  t.print(std::cout);
  std::cout << "\n(paper: recalibrated efficiency near 100% through physical cores;\n"
               " hyperthreading adds further throughput => compute bound, not memory bound)\n";

  perf::print_banner(std::cout,
                     "Fig 11c: NUMA locality — sharded batch search");
  {
    // The paper's scaling argument stops at one socket; this section
    // extends it across sockets. A flat fan-out streams remote columns on
    // a multi-node host; sharding splits the database per node and pins
    // each shard's pool and pages there, so the hottest loads stay local.
    // The LLC-miss column is the per-shard PMU delta over the measured
    // searches — locality shows up as fewer misses per gigacell, not just
    // as GCUPS (which frequency noise can hide). On a single-node runner
    // the forced S=2 split still exercises the machinery; expect parity.
    const parallel::Topology topo = parallel::Topology::detect();
    std::cout << "topology: " << topo.nodes.size() << " node(s)"
              << (topo.synthetic ? " (synthetic: no sysfs NUMA info)" : "")
              << ", numa policy "
              << (topo.multi_node() ? "bind" : "off") << "\n\n";

    core::AlignConfig bcfg;  // adaptive width: the production batch path
    const size_t s2 =
        topo.multi_node() ? topo.nodes.size() : static_cast<size_t>(2);
    const int reps = args.quick ? 2 : 4;

    perf::Table st({"shards", "GCUPS", "vs S=1", "LLC miss/Gcell", "busy skew"});
    double base_g = 0;
    for (const size_t S : {static_cast<size_t>(1), s2}) {
      align::DatabaseSearch search(w.db, bcfg, align::SearchMode::Batch);
      align::ShardOptions sopt;
      sopt.shards = static_cast<int>(
          std::min(S, search.packed_db()->batch_count()));
      sopt.numa = topo.multi_node() ? parallel::NumaPolicy::Bind
                                    : parallel::NumaPolicy::Off;
      if (auto ok = search.enable_sharding(sopt); !ok) {
        std::cout << "enable_sharding(" << S << "): " << ok.error().message
                  << "\n";
        continue;
      }
      const align::ShardedSearch* sh = search.sharded();
      const size_t got = sh != nullptr ? sh->shard_count() : 1;

      for (const auto& q : w.queries) search.search(q, 10);  // warm-up + place
      uint64_t llc0 = 0, cells0 = 0;
      std::vector<double> busy0(got, 0.0);
      if (sh != nullptr)
        for (size_t i = 0; i < got; ++i) {
          const align::ShardStats s = sh->shard_stats(i);
          llc0 += s.llc_misses;
          cells0 += s.cells;
          busy0[i] = s.busy_seconds;
        }
      double g = 0;
      uint64_t cells = 0;
      perf::Stopwatch sw;
      for (int r = 0; r < reps; ++r)
        for (const auto& q : w.queries) {
          align::SearchResult res = search.search(q, 10);
          cells += res.stats.cells;
        }
      g = perf::gcups(cells, sw.seconds());
      if (base_g == 0) base_g = g;

      uint64_t llc1 = 0, cells1 = 0;
      double skew = 0;
      if (sh != nullptr) {
        double busy_min = 1e300, busy_max = 0;
        for (size_t i = 0; i < got; ++i) {
          const align::ShardStats s = sh->shard_stats(i);
          llc1 += s.llc_misses;
          cells1 += s.cells;
          const double b = s.busy_seconds - busy0[i];
          busy_min = std::min(busy_min, b);
          busy_max = std::max(busy_max, b);
        }
        skew = busy_min > 0 ? busy_max / busy_min : 0;
      }
      const uint64_t dcells = cells1 - cells0;
      const double miss_per_gcell =
          dcells > 0 ? static_cast<double>(llc1 - llc0) / (static_cast<double>(dcells) / 1e9)
                     : 0;
      st.row({std::to_string(got), perf::Table::num(g, 2),
              perf::Table::num(g / base_g, 2),
              llc1 > llc0 ? perf::Table::num(miss_per_gcell, 0) : "n/a (no PMU)",
              skew > 0 ? perf::Table::num(skew, 2) : "-"});
    }
    st.print(std::cout);
    std::cout << "\n(multi-node: S=nodes with bind should cut LLC miss/Gcell and\n"
                 " hold GCUPS scaling; single-node: S=2 exercises the split/merge\n"
                 " path and should track S=1 — the merge is bit-identical either way)\n";
  }
  return 0;
}
