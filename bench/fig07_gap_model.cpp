// Fig 7: affine vs linear gap penalty.
//
// Paper finding: the affine model's extra E/F bookkeeping does not cause a
// noticeable performance drop.
#include "bench_common.hpp"
#include "core/workspace.hpp"

using namespace swve;
using bench::BenchArgs;
using bench::Workload;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  Workload w = Workload::make(args);
  bench::print_environment();
  perf::print_banner(std::cout,
                     "Fig 7: affine (11/1) vs linear (2) gap penalty, GCUPS per query");

  core::Workspace ws;
  auto kernel = [&](core::GapModel gm) {
    return [&, gm](const seq::Sequence& q, const seq::Sequence& t) {
      core::AlignConfig cfg;
      cfg.gap_model = gm;
      if (gm == core::GapModel::Linear) cfg.gap_extend = 2;
      cfg.width = core::Width::W16;
      core::diag_align(q, t, cfg, ws);
    };
  };

  perf::Table table({"query", "len", "affine GCUPS", "linear GCUPS", "affine/linear"});
  std::vector<double> ratios;
  for (const auto& q : w.queries) {
    double ga = bench::time_gcups(q, w.db, kernel(core::GapModel::Affine));
    double gl = bench::time_gcups(q, w.db, kernel(core::GapModel::Linear));
    ratios.push_back(ga / gl);
    table.row({q.id(), std::to_string(q.length()), perf::Table::num(ga, 2),
               perf::Table::num(gl, 2), perf::Table::num(ga / gl, 2)});
  }
  table.print(std::cout);
  std::cout << "\ngeomean affine/linear: " << perf::Table::num(bench::geomean(ratios), 2)
            << "  (paper: ~1, no noticeable drop from the affine model)\n";
  return 0;
}
