// Fig 8: with vs without traceback.
//
// Paper finding: storing per-cell directions for backtracking surprisingly
// does not degrade throughput (the direction stores are contiguous in the
// diagonal-linearized layout and the walk itself is O(path)).
#include "bench_common.hpp"
#include "core/workspace.hpp"

using namespace swve;
using bench::BenchArgs;
using bench::Workload;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  Workload w = Workload::make(args);
  bench::print_environment();
  perf::print_banner(std::cout, "Fig 8: with vs without traceback, GCUPS per query");

  core::Workspace ws;
  auto kernel = [&](bool tb) {
    return [&, tb](const seq::Sequence& q, const seq::Sequence& t) {
      core::AlignConfig cfg;
      cfg.traceback = tb;
      cfg.width = core::Width::W16;
      cfg.max_traceback_cells = uint64_t{1} << 33;
      core::diag_align(q, t, cfg, ws);
    };
  };

  perf::Table table({"query", "len", "no-tb GCUPS", "tb GCUPS", "tb/no-tb"});
  std::vector<double> ratios;
  for (const auto& q : w.queries) {
    double g0 = bench::time_gcups(q, w.db, kernel(false));
    double g1 = bench::time_gcups(q, w.db, kernel(true));
    ratios.push_back(g1 / g0);
    table.row({q.id(), std::to_string(q.length()), perf::Table::num(g0, 2),
               perf::Table::num(g1, 2), perf::Table::num(g1 / g0, 2)});
  }
  table.print(std::cout);
  std::cout << "\ngeomean traceback/no-traceback: "
            << perf::Table::num(bench::geomean(ratios), 2)
            << "  (paper: ~1, traceback does not degrade performance)\n";
  return 0;
}
