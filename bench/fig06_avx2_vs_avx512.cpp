// Fig 6: AVX2 (256-bit) vs AVX-512 performance for 10 protein queries.
//
// Paper finding: AVX-512 does NOT deliver the naively expected 2x over
// AVX2 — the series should be close, which is why the paper continues with
// AVX2. The scalar column is printed for reference.
#include "bench_common.hpp"
#include "core/workspace.hpp"

using namespace swve;
using bench::BenchArgs;
using bench::Workload;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  Workload w = Workload::make(args);
  bench::print_environment();
  perf::print_banner(std::cout, "Fig 6: AVX2 vs AVX-512, GCUPS per query (16-bit diag kernel)");

  core::Workspace ws;
  auto kernel = [&](simd::Isa isa) {
    return [&, isa](const seq::Sequence& q, const seq::Sequence& t) {
      core::AlignConfig cfg;
      cfg.isa = isa;
      cfg.width = core::Width::W16;
      core::diag_align(q, t, cfg, ws);
    };
  };

  std::vector<simd::Isa> isas;
  isas.push_back(simd::Isa::Scalar);
  if (simd::isa_available(simd::Isa::Avx2)) isas.push_back(simd::Isa::Avx2);
  if (simd::isa_available(simd::Isa::Avx512)) isas.push_back(simd::Isa::Avx512);

  std::vector<std::string> headers = {"query", "len"};
  for (simd::Isa isa : isas) headers.push_back(std::string(simd::isa_name(isa)) + " GCUPS");
  if (isas.size() == 3) headers.push_back("512/256");
  perf::Table table(headers);

  std::vector<double> ratios;
  for (const auto& q : w.queries) {
    std::vector<std::string> row = {q.id(), std::to_string(q.length())};
    double g256 = 0, g512 = 0;
    for (simd::Isa isa : isas) {
      double g = bench::time_gcups(q, w.db, kernel(isa));
      if (isa == simd::Isa::Avx2) g256 = g;
      if (isa == simd::Isa::Avx512) g512 = g;
      row.push_back(perf::Table::num(g, 2));
    }
    if (g256 > 0 && g512 > 0) {
      row.push_back(perf::Table::num(g512 / g256, 2));
      ratios.push_back(g512 / g256);
    }
    table.row(row);
  }
  table.print(std::cout);
  if (!ratios.empty())
    std::cout << "\ngeomean AVX-512 / AVX2 speedup: "
              << perf::Table::num(bench::geomean(ratios), 2)
              << "  (paper: well below 2x; kept AVX2 as primary)\n";
  return 0;
}
